"""The simulated switched network.

Delivery is synchronous and depth-first: ``send`` invokes the recipient's
handler inline and returns nothing (fire-and-forget, 1 message);
``call`` returns the handler's return value and charges the reply
message too (2 messages), matching how the papers count a key search
(request + record back) versus an insert (request only).

Unavailability is modelled at the node level: messages to a failed node
raise :class:`NodeUnavailable` at the *sender*, standing in for the
sender's timeout.  The timeout itself costs no message.
"""

from __future__ import annotations

from typing import Any

from repro.sim.messages import Message
from repro.sim.node import Node
from repro.sim.stats import MessageStats


class UnknownNode(KeyError):
    """Message addressed to a node id that was never registered."""


class NodeUnavailable(RuntimeError):
    """The addressed node is currently failed (sender's timeout fires)."""

    def __init__(self, node_id: str):
        super().__init__(f"node {node_id!r} is unavailable")
        self.node_id = node_id


class Network:
    """Node registry, message transport, accounting and failure state."""

    def __init__(self, multicast_available: bool = True):
        self.nodes: dict[str, Node] = {}
        self.failed: set[str] = set()
        self.stats = MessageStats()
        self.multicast_available = multicast_available
        self._depth = 0

    # ------------------------------------------------------------------
    # registry and failure state
    # ------------------------------------------------------------------
    def register(self, node: Node) -> None:
        """Attach a node; its id must be unique on this network."""
        if node.node_id in self.nodes:
            raise ValueError(f"node id {node.node_id!r} already registered")
        self.nodes[node.node_id] = node
        node.network = self

    def unregister(self, node_id: str) -> None:
        """Detach a node entirely (decommissioned server)."""
        self.nodes.pop(node_id, None)
        self.failed.discard(node_id)

    def fail(self, node_id: str) -> None:
        """Make a node unavailable (crash / partition / power-off)."""
        if node_id not in self.nodes:
            raise UnknownNode(node_id)
        self.failed.add(node_id)

    def restore(self, node_id: str) -> None:
        """Bring a failed node back (its state as the node object holds it)."""
        self.failed.discard(node_id)

    def is_available(self, node_id: str) -> bool:
        """True when the node exists and is not failed."""
        return node_id in self.nodes and node_id not in self.failed

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _deliver(self, message: Message) -> Any:
        if message.recipient not in self.nodes:
            raise UnknownNode(message.recipient)
        if message.recipient in self.failed:
            raise NodeUnavailable(message.recipient)
        self._depth += 1
        self.stats.record(message.kind, message.size, self._depth)
        try:
            return self.nodes[message.recipient].receive(message)
        finally:
            self._depth -= 1

    def send(self, sender: str, recipient: str, kind: str, payload: Any = None) -> None:
        """Fire-and-forget unicast: one message, no reply charged."""
        self._deliver(Message(sender, recipient, kind, payload))

    def call(self, sender: str, recipient: str, kind: str, payload: Any = None) -> Any:
        """Request/reply unicast: two messages, returns the handler result."""
        result = self._deliver(Message(sender, recipient, kind, payload))
        reply = Message(recipient, sender, f"{kind}.reply", result)
        self.stats.record(reply.kind, reply.size, self._depth + 1)
        return result

    def multicast(
        self,
        sender: str,
        recipients: list[str],
        kind: str,
        payload: Any = None,
        collect_replies: bool = True,
    ) -> tuple[dict[str, Any], list[str]]:
        """Deliver to many nodes; returns ``(replies, unavailable)``.

        With hardware multicast available the request costs one message
        regardless of fan-out, otherwise one per recipient (the papers
        price scans both ways).  Replies are always unicast.  Failed
        recipients are skipped and reported, letting deterministic
        termination protocols detect the gap.
        """
        unavailable: list[str] = []
        replies: dict[str, Any] = {}
        charged_request = False
        for recipient in recipients:
            if not self.is_available(recipient):
                unavailable.append(recipient)
                continue
            message = Message(sender, recipient, kind, payload)
            if self.multicast_available and charged_request:
                # Multicast fabric: later copies of the request are free.
                self._depth += 1
                try:
                    result = self.nodes[recipient].receive(message)
                finally:
                    self._depth -= 1
            else:
                result = self._deliver(message)
                charged_request = True
            if collect_replies:
                reply = Message(recipient, sender, f"{kind}.reply", result)
                self.stats.record(reply.kind, reply.size, self._depth + 2)
                replies[recipient] = result
        return replies, unavailable
