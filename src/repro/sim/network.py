"""The simulated switched network.

Delivery is synchronous and depth-first: ``send`` invokes the recipient's
handler inline and returns nothing (fire-and-forget, 1 message);
``call`` returns the handler's return value and charges the reply
message too (2 messages), matching how the papers count a key search
(request + record back) versus an insert (request only).

Unavailability is modelled at the node level: messages to a failed node
raise :class:`NodeUnavailable` at the *sender*, standing in for the
sender's timeout.  The timeout itself costs no message.

A :class:`~repro.sim.faults.FaultPlane` (optional) adds message-level
faults on top: drops, duplicates, bounded delays and transient failures
(:class:`DeliveryFault`).  The network also keeps a **logical clock**:
``now`` advances by one unit per top-level operation and by ``advance``
(a sender backing off).  Clock listeners (failure schedules) and the
release of matured delayed messages run only at depth 0 — between
operation chains, never in the middle of one.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.messages import Message
from repro.sim.node import Node
from repro.sim.stats import MessageStats


class UnknownNode(KeyError):
    """Message addressed to a node id that was never registered."""


class NodeUnavailable(RuntimeError):
    """The addressed node is currently failed (sender's timeout fires)."""

    def __init__(self, node_id: str):
        super().__init__(f"node {node_id!r} is unavailable")
        self.node_id = node_id


class DeliveryFault(RuntimeError):
    """Transient message-level failure, visible to the sender.

    Raised when the fault plane drops or fails a ``call``'s request or
    reply, or transiently fails a ``send``.  Unlike
    :class:`NodeUnavailable` the addressed node is (as far as the sender
    knows) alive — retrying after a backoff is the right reaction.
    ``stage`` is ``"request"`` (handler did NOT run) or ``"reply"``
    (handler DID run; the result was lost — the at-least-once case).
    """

    def __init__(self, node_id: str, stage: str = "request"):
        super().__init__(
            f"delivery to {node_id!r} failed transiently ({stage} lost)"
        )
        self.node_id = node_id
        self.stage = stage


class Network:
    """Node registry, message transport, accounting and failure state."""

    def __init__(self, multicast_available: bool = True):
        self.nodes: dict[str, Node] = {}
        self.failed: set[str] = set()
        self.stats = MessageStats()
        self.multicast_available = multicast_available
        self._depth = 0
        #: logical clock: 1 unit per top-level operation, plus advance()
        self.now = 0.0
        self.fault_plane = None
        self._clock_listeners: list[Callable[[float], None]] = []
        #: structured event tracer (None = tracing off, zero overhead)
        self.tracer = None
        #: metrics registry (None = metrics off)
        self.metrics = None
        self._m_messages = None
        self._m_bytes = None

    # ------------------------------------------------------------------
    # registry and failure state
    # ------------------------------------------------------------------
    def register(self, node: Node) -> None:
        """Attach a node; its id must be unique on this network."""
        if node.node_id in self.nodes:
            raise ValueError(f"node id {node.node_id!r} already registered")
        self.nodes[node.node_id] = node
        node.network = self
        if self.tracer is not None:
            self.tracer.emit("node.register", node=node.node_id)

    def unregister(self, node_id: str) -> None:
        """Detach a node entirely (decommissioned server).

        Strict: unregistering an unknown id raises :class:`UnknownNode`
        — a typo in a decommissioning schedule should fail loudly, not
        silently do nothing.
        """
        if node_id not in self.nodes:
            raise UnknownNode(node_id)
        del self.nodes[node_id]
        self.failed.discard(node_id)
        if self.tracer is not None:
            self.tracer.emit("node.unregister", node=node_id)

    def fail(self, node_id: str) -> None:
        """Make a node unavailable (crash / partition / power-off)."""
        if node_id not in self.nodes:
            raise UnknownNode(node_id)
        self.failed.add(node_id)
        if self.tracer is not None:
            self.tracer.emit("node.fail", node=node_id)

    def restore(self, node_id: str) -> None:
        """Bring a failed node back (its state as the node object holds it).

        Strict: restoring an id that was never registered raises
        :class:`UnknownNode`, mirroring :meth:`fail` — a misspelled
        failure schedule must not silently "succeed".  Restoring a
        registered, not-failed node is a no-op (the node may have been
        rebuilt onto a spare while its crash window was still open).
        """
        if node_id not in self.nodes:
            raise UnknownNode(node_id)
        if node_id in self.failed and self.tracer is not None:
            self.tracer.emit("node.restore", node=node_id)
        self.failed.discard(node_id)

    def is_available(self, node_id: str) -> bool:
        """True when the node exists and is not failed."""
        return node_id in self.nodes and node_id not in self.failed

    # ------------------------------------------------------------------
    # fault plane and logical clock
    # ------------------------------------------------------------------
    def install_fault_plane(self, plane) -> None:
        """Attach a :class:`~repro.sim.faults.FaultPlane` (None removes)."""
        self.fault_plane = plane
        if plane is not None:
            plane.tracer = self.tracer

    def install_tracer(self, tracer) -> None:
        """Attach a :class:`~repro.obs.trace.Tracer` (None removes).

        The tracer's clock is bound to this network's logical clock, so
        every event timestamp is simulated time — the determinism the
        replay tests rely on.  With no tracer installed every emission
        site is a single ``is None`` check.
        """
        self.tracer = tracer
        if tracer is not None:
            tracer.clock = lambda: self.now
        if self.fault_plane is not None:
            self.fault_plane.tracer = tracer

    def install_metrics(self, registry) -> None:
        """Attach a :class:`~repro.obs.metrics.MetricsRegistry` (None
        removes).  The network feeds the global ``net.*`` counters, and
        every labelled :class:`MessageStats` window that closes lands in
        the registry's per-operation histograms.
        """
        self.metrics = registry
        self.stats.metrics = registry
        if registry is not None:
            self._m_messages = registry.counter(
                "net.messages", "messages delivered"
            )
            self._m_bytes = registry.counter(
                "net.bytes", "payload bytes delivered"
            )
        else:
            self._m_messages = None
            self._m_bytes = None

    def add_clock_listener(self, listener: Callable[[float], None]) -> None:
        """Register a callback invoked with ``now`` at each clock step.

        Listeners run only between operation chains (depth 0); failure
        schedules use this to apply crash/restore windows.
        """
        self._clock_listeners.append(listener)

    def remove_clock_listener(self, listener: Callable[[float], None]) -> None:
        """Detach a clock listener (no-op when absent).

        A coordinator takeover uses this to silence the deposed
        primary's heartbeat.
        """
        try:
            self._clock_listeners.remove(listener)
        except ValueError:
            pass

    def advance(self, dt: float = 1.0) -> float:
        """Advance the logical clock (a sender waiting / backing off).

        At depth 0 this also runs clock listeners and delivers matured
        delayed messages; mid-chain it only moves the clock (the
        catch-up happens when the chain unwinds).
        """
        if dt < 0:
            raise ValueError("time cannot go backwards")
        self.now += dt
        if self._depth == 0:
            self._run_listeners()
            self._pump()
        return self.now

    def _tick(self) -> None:
        """One clock unit per top-level operation."""
        self.now += 1.0
        self._run_listeners()
        self._pump()

    def _run_listeners(self) -> None:
        # Snapshot: a listener may add/remove listeners (a standby
        # taking over swaps the primary's heartbeat) mid-iteration.
        for listener in list(self._clock_listeners):
            listener(self.now)

    def _pump(self) -> None:
        """Deliver matured delayed messages (depth 0 only).

        A message whose recipient died or was decommissioned while it
        was in flight is counted as lost, not raised — nobody is waiting
        on a fire-and-forget send from the past.
        """
        plane = self.fault_plane
        if plane is None:
            return
        for message in plane.release_due(self.now):
            if self.tracer is not None:
                self.tracer.emit(
                    "msg.release", to=message.recipient, kind=message.kind
                )
            try:
                self._deliver(message)
            except (UnknownNode, NodeUnavailable):
                plane.counters["lost_in_flight"] += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "msg.lost",
                        to=message.recipient,
                        kind=message.kind,
                        reason="recipient gone",
                    )

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _deliver(self, message: Message) -> Any:
        if message.recipient not in self.nodes:
            raise UnknownNode(message.recipient)
        if message.recipient in self.failed:
            raise NodeUnavailable(message.recipient)
        self._depth += 1
        self.stats.record(message.kind, message.size, self._depth)
        if self._m_messages is not None:
            self._m_messages.inc()
            self._m_bytes.inc(message.size)
        if self.tracer is not None:
            self.tracer.emit(
                "msg.deliver",
                **{"from": message.sender},
                to=message.recipient,
                kind=message.kind,
                size=message.size,
                depth=self._depth,
            )
        try:
            return self.nodes[message.recipient].receive(message)
        finally:
            self._depth -= 1

    def send(self, sender: str, recipient: str, kind: str, payload: Any = None) -> None:
        """Fire-and-forget unicast: one message, no reply charged."""
        if self._depth == 0:
            self._tick()
        message = Message(sender, recipient, kind, payload)
        if self.tracer is not None:
            self.tracer.emit(
                "msg.send",
                **{"from": sender},
                to=recipient,
                kind=kind,
                size=message.size,
            )
        plane = self.fault_plane
        if plane is not None:
            outcome, release_at = plane.outcome_for(message, self.now)
            if outcome == "drop":
                # Silently lost: the message left the sender (charged)
                # but never arrives — the UDP case.
                plane.counters["dropped"] += 1
                self.stats.record(message.kind, message.size, self._depth + 1)
                if self.tracer is not None:
                    self.tracer.emit(
                        "msg.lost", to=recipient, kind=kind, reason="drop"
                    )
                return
            if outcome == "fail":
                plane.counters["failed"] += 1
                raise DeliveryFault(recipient, "request")
            if outcome == "delay":
                plane.hold(message, release_at)
                if self.tracer is not None:
                    self.tracer.emit(
                        "msg.hold",
                        to=recipient,
                        kind=kind,
                        release_at=release_at,
                    )
                return
            if outcome == "duplicate":
                plane.counters["duplicated"] += 1
                self._deliver(message)
                self._deliver(Message(sender, recipient, kind, payload))
                return
        self._deliver(message)

    def call(self, sender: str, recipient: str, kind: str, payload: Any = None) -> Any:
        """Request/reply unicast: two messages, returns the handler result.

        Under a fault plane the request and the reply can each be lost
        (raising :class:`DeliveryFault` at the sender — its timeout) or
        the request duplicated (the handler runs twice; the second
        result is returned, as after a retransmission).  Calls are never
        delayed: they model a blocking RPC.
        """
        if self._depth == 0:
            self._tick()
        message = Message(sender, recipient, kind, payload)
        if self.tracer is not None:
            self.tracer.emit(
                "msg.send",
                **{"from": sender},
                to=recipient,
                kind=kind,
                size=message.size,
                rpc=True,
            )
        plane = self.fault_plane
        if plane is not None:
            outcome, _ = plane.outcome_for(message, self.now, can_delay=False)
            if outcome in ("drop", "fail"):
                plane.counters["dropped" if outcome == "drop" else "failed"] += 1
                if outcome == "drop":
                    self.stats.record(message.kind, message.size, self._depth + 1)
                    if self.tracer is not None:
                        self.tracer.emit(
                            "msg.lost", to=recipient, kind=kind, reason="drop"
                        )
                raise DeliveryFault(recipient, "request")
            if outcome == "duplicate":
                plane.counters["duplicated"] += 1
                self._deliver(message)
                result = self._deliver(Message(sender, recipient, kind, payload))
            else:
                result = self._deliver(message)
            reply = Message(recipient, sender, f"{kind}.reply", result)
            outcome, _ = plane.outcome_for(reply, self.now, can_delay=False)
            if outcome in ("drop", "fail"):
                plane.counters["dropped" if outcome == "drop" else "failed"] += 1
                if outcome == "drop":
                    self.stats.record(reply.kind, reply.size, self._depth + 1)
                    if self.tracer is not None:
                        self.tracer.emit(
                            "msg.lost",
                            to=sender,
                            kind=reply.kind,
                            reason="drop",
                        )
                raise DeliveryFault(recipient, "reply")
            self._record_reply(reply, self._depth + 1)
            return result
        result = self._deliver(message)
        reply = Message(recipient, sender, f"{kind}.reply", result)
        self._record_reply(reply, self._depth + 1)
        return result

    def _record_reply(self, reply: Message, depth: int) -> None:
        """Account one successful reply leg (stats, metrics, trace)."""
        self.stats.record(reply.kind, reply.size, depth)
        if self._m_messages is not None:
            self._m_messages.inc()
            self._m_bytes.inc(reply.size)
        if self.tracer is not None:
            self.tracer.emit(
                "msg.reply",
                **{"from": reply.sender},
                to=reply.recipient,
                kind=reply.kind,
                size=reply.size,
            )

    def multicast(
        self,
        sender: str,
        recipients: list[str],
        kind: str,
        payload: Any = None,
        collect_replies: bool = True,
    ) -> tuple[dict[str, Any], list[str]]:
        """Deliver to many nodes; returns ``(replies, unavailable)``.

        With hardware multicast available the request costs one message
        regardless of fan-out, otherwise one per recipient (the papers
        price scans both ways).  Replies are always unicast.  Failed
        recipients are skipped and reported, letting deterministic
        termination protocols detect the gap.  Under a fault plane a
        recipient whose request copy — or collected *reply* — is dropped
        or transiently failed also lands in ``unavailable``: from the
        sender's seat a lost reply and a dead node look identical (only
        the timeout fires).  The reply leg passes through the same
        fault-plane rules as a ``call``'s reply; a lost reply means the
        handler DID run (the at-least-once case).
        """
        unavailable: list[str] = []
        replies: dict[str, Any] = {}
        charged_request = False
        plane = self.fault_plane
        for recipient in recipients:
            if not self.is_available(recipient):
                unavailable.append(recipient)
                continue
            message = Message(sender, recipient, kind, payload)
            if plane is not None:
                outcome, _ = plane.outcome_for(message, self.now, can_delay=False)
                if outcome in ("drop", "fail"):
                    plane.counters[
                        "dropped" if outcome == "drop" else "failed"
                    ] += 1
                    unavailable.append(recipient)
                    continue
            if self.multicast_available and charged_request:
                # Multicast fabric: later copies of the request are free.
                self._depth += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "msg.deliver",
                        **{"from": sender},
                        to=recipient,
                        kind=kind,
                        size=message.size,
                        depth=self._depth,
                        free=True,
                    )
                try:
                    result = self.nodes[recipient].receive(message)
                finally:
                    self._depth -= 1
            else:
                result = self._deliver(message)
                charged_request = True
            if collect_replies:
                reply = Message(recipient, sender, f"{kind}.reply", result)
                if plane is not None:
                    outcome, _ = plane.outcome_for(
                        reply, self.now, can_delay=False
                    )
                    if outcome in ("drop", "fail"):
                        plane.counters[
                            "dropped" if outcome == "drop" else "failed"
                        ] += 1
                        if outcome == "drop":
                            self.stats.record(
                                reply.kind, reply.size, self._depth + 2
                            )
                            if self.tracer is not None:
                                self.tracer.emit(
                                    "msg.lost",
                                    to=sender,
                                    kind=reply.kind,
                                    reason="drop",
                                )
                        unavailable.append(recipient)
                        continue
                self._record_reply(reply, self._depth + 2)
                replies[recipient] = result
        return replies, unavailable
