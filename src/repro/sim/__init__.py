"""In-process multicomputer simulator.

The paper's testbed is a network multicomputer (workstations on a 100
Mb/s Ethernet).  This subpackage substitutes an in-process simulation
that preserves the paper's *primary metric* — message counts, which are
network-invariant — and adds a parameterized latency model so the
benchmarks can also report simulated wall-clock figures.

Pieces
------
``Network``
    The switched fabric: node registry, synchronous RPC-style unicast
    (``send`` fire-and-forget = 1 message, ``call`` request/reply = 2),
    multicast, per-message accounting windows, failure injection.
``Node``
    Base class dispatching incoming messages to ``handle_<kind>``.
``MessageStats`` / ``LatencyModel``
    Counters and the message→time mapping.
``FailureInjector``
    Deterministic and probabilistic unavailability (crash/restore,
    per-node availability sampling for Monte-Carlo experiments).
"""

from repro.sim.failure import FailureInjector
from repro.sim.messages import Message
from repro.sim.network import Network, NodeUnavailable, UnknownNode
from repro.sim.node import Node
from repro.sim.rng import make_rng
from repro.sim.stats import LatencyModel, MessageStats, OperationWindow

__all__ = [
    "Network",
    "Node",
    "NodeUnavailable",
    "UnknownNode",
    "Message",
    "MessageStats",
    "OperationWindow",
    "LatencyModel",
    "FailureInjector",
    "make_rng",
]
