"""In-process multicomputer simulator.

The paper's testbed is a network multicomputer (workstations on a 100
Mb/s Ethernet).  This subpackage substitutes an in-process simulation
that preserves the paper's *primary metric* — message counts, which are
network-invariant — and adds a parameterized latency model so the
benchmarks can also report simulated wall-clock figures.

Pieces
------
``Network``
    The switched fabric: node registry, synchronous RPC-style unicast
    (``send`` fire-and-forget = 1 message, ``call`` request/reply = 2),
    multicast, per-message accounting windows, failure injection, a
    logical clock, and an optional message-level fault plane.
``Node``
    Base class dispatching incoming messages to ``handle_<kind>``.
``MessageStats`` / ``LatencyModel``
    Counters and the message→time mapping.
``FailureInjector``
    Deterministic and probabilistic unavailability (crash/restore,
    per-node availability sampling, crash windows, flaky-node MTBF/MTTR
    schedules driven by the logical clock).
``FaultPlane`` / ``FaultRule`` / ``RetryPolicy``
    Message-level fault injection (drop/duplicate/delay/transient-fail)
    and the senders' bounded-backoff retry discipline.
"""

from repro.sim.failure import FailureInjector
from repro.sim.faults import (
    DEFAULT_PROTECTED_KINDS,
    FaultPlane,
    FaultRule,
    RetryPolicy,
    SlowRule,
)
from repro.sim.messages import Message
from repro.sim.network import (
    DEFAULT_SHEDDABLE_KINDS,
    DeliveryFault,
    Network,
    NodeBusy,
    NodeUnavailable,
    ServiceModel,
    UnknownNode,
)
from repro.sim.node import Node
from repro.sim.rng import make_rng
from repro.sim.stats import LatencyModel, MessageStats, OperationWindow

__all__ = [
    "Network",
    "Node",
    "NodeUnavailable",
    "UnknownNode",
    "DeliveryFault",
    "Message",
    "MessageStats",
    "OperationWindow",
    "LatencyModel",
    "FailureInjector",
    "FaultPlane",
    "FaultRule",
    "RetryPolicy",
    "SlowRule",
    "ServiceModel",
    "NodeBusy",
    "DEFAULT_PROTECTED_KINDS",
    "DEFAULT_SHEDDABLE_KINDS",
    "make_rng",
]
