"""Message accounting and the message→time latency model.

The papers evaluate SDDS operations by *number of messages*, a
network-invariant measure; wall-clock claims are then derived from the
network and CPU speeds.  ``MessageStats`` counts messages globally and
inside nestable per-operation windows; ``LatencyModel`` converts a
window's counts into simulated seconds.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class OperationWindow:
    """Counters for one logical operation (one key search, one recovery...)."""

    label: str = ""
    messages: int = 0
    bytes: int = 0
    by_kind: Counter = field(default_factory=Counter)
    #: Longest chain of causally-dependent messages (serial depth).  The
    #: network tracks this as the current call-stack depth, so parallel
    #: fan-out (multicast + replies) charges depth 2, not 2M.
    serial_depth: int = 0
    #: GF multiply-accumulate symbol operations charged to this window.
    #: Batched 2D kernels perform the same symbol work in far fewer numpy
    #: dispatches, so the CPU model counts *symbols touched*, never
    #: kernel calls — a batched rebuild reports the same symbol_ops as a
    #: record-at-a-time one.
    symbol_ops: int = 0

    def record(self, kind: str, size: int, depth: int) -> None:
        self.messages += 1
        self.bytes += size
        self.by_kind[kind] += 1
        if depth > self.serial_depth:
            self.serial_depth = depth

    def record_symbols(self, ops: int) -> None:
        self.symbol_ops += ops


class MessageStats:
    """Global counters plus a stack of open operation windows."""

    def __init__(self) -> None:
        self.total = OperationWindow(label="total")
        self._stack: list[OperationWindow] = []
        #: optional MetricsRegistry: every labelled window that closes
        #: is folded into its per-operation histograms (set by
        #: ``Network.install_metrics``; None = off, zero overhead)
        self.metrics = None

    # ------------------------------------------------------------------
    def record(self, kind: str, size: int, depth: int) -> None:
        """Record one message into the global and all open windows."""
        self.total.record(kind, size, depth)
        for window in self._stack:
            window.record(kind, size, depth)

    def record_symbols(self, ops: int) -> None:
        """Charge GF symbol work into the global and all open windows."""
        self.total.record_symbols(ops)
        for window in self._stack:
            window.record_symbols(ops)

    # ------------------------------------------------------------------
    def open(self, label: str = "") -> OperationWindow:
        """Open a nested accounting window; close with :meth:`close`."""
        window = OperationWindow(label=label)
        self._stack.append(window)
        return window

    def close(self, window: OperationWindow) -> OperationWindow:
        """Close a window opened earlier (must close inner-to-outer)."""
        if not self._stack or self._stack[-1] is not window:
            raise RuntimeError("operation windows must close LIFO")
        closed = self._stack.pop()
        if self.metrics is not None and closed.label:
            self.metrics.observe_window(closed)
        return closed

    class _WindowContext:
        def __init__(self, stats: "MessageStats", label: str):
            self.stats = stats
            self.label = label
            self.window: OperationWindow | None = None

        def __enter__(self) -> OperationWindow:
            self.window = self.stats.open(self.label)
            return self.window

        def __exit__(self, *exc_info) -> None:
            assert self.window is not None
            self.stats.close(self.window)

    def measure(self, label: str = "") -> "MessageStats._WindowContext":
        """``with stats.measure("insert") as w: ...`` convenience."""
        return MessageStats._WindowContext(self, label)

    def reset(self) -> None:
        """Zero the global counters (open windows are unaffected)."""
        self.total = OperationWindow(label="total")


@dataclass(frozen=True)
class LatencyModel:
    """Maps an operation window to simulated seconds.

    Defaults approximate the paper's era scaled to a modern LAN: ~30 µs
    per message of fixed cost plus 100 Mb/s of throughput, with a CPU
    term for GF symbol operations during recovery.  The *ratios* are what
    shape the reproduced curves; absolute values are configuration.
    """

    per_message_s: float = 30e-6
    per_byte_s: float = 8 / 100e6  # 100 Mb/s
    per_gf_symbol_op_s: float = 2e-9

    def window_time(self, window: OperationWindow, serial: bool = False) -> float:
        """Simulated seconds for a window.

        ``serial=True`` charges every message sequentially (a client doing
        one thing at a time); the default charges the serial depth for the
        fixed cost and the full byte volume for the bandwidth term,
        modelling parallel fan-out phases.  GF symbol work recorded into
        the window (decode/encode during recovery) adds its CPU term.
        """
        fixed = window.messages if serial else max(window.serial_depth, 1)
        return (
            fixed * self.per_message_s
            + window.bytes * self.per_byte_s
            + window.symbol_ops * self.per_gf_symbol_op_s
        )

    def gf_time(self, symbol_ops: int) -> float:
        """CPU seconds for ``symbol_ops`` GF multiply-accumulate steps."""
        return symbol_ops * self.per_gf_symbol_op_s
