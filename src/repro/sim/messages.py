"""Message envelope and size accounting.

The simulator charges each message a size: a fixed header plus the
payload's estimated wire size.  Sizes only feed the latency model — the
correctness of the protocols never depends on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Fixed per-message overhead (addressing, kind tag, ...), in bytes.
HEADER_BYTES = 32


def estimate_size(payload: Any) -> int:
    """Rough wire size of a message payload, in bytes.

    Counts byte strings at face value, numbers as 8 bytes, strings by
    length, and containers recursively.  Deliberately simple — it feeds a
    latency *model*, not an implementation.

    Implemented with an explicit stack and exact-type dispatch: batch
    messages carry hundreds of nested op dicts, and this runs once per
    message on the simulator's hot path.  Subclassed containers fall
    through to the general checks and size identically to before.
    """
    total = 0
    stack = [payload]
    while stack:
        item = stack.pop()
        kind = type(item)
        if kind is int or kind is float:
            total += 8
        elif kind is str:
            total += len(item)
        elif kind is dict:
            stack.extend(item.keys())
            stack.extend(item.values())
        elif kind is bytes or kind is bytearray:
            total += len(item)
        elif kind is list or kind is tuple:
            stack.extend(item)
        elif item is None:
            continue
        elif kind is bool:
            total += 1
        # exact-type misses (subclasses, sets, opaque objects)
        elif isinstance(item, (bytes, bytearray)):
            total += len(item)
        elif isinstance(item, bool):
            total += 1
        elif isinstance(item, (int, float)):
            total += 8
        elif isinstance(item, str):
            total += len(item)
        elif isinstance(item, dict):
            stack.extend(item.keys())
            stack.extend(item.values())
        elif isinstance(item, (list, tuple, set, frozenset)):
            stack.extend(item)
        elif hasattr(item, "wire_size"):
            total += int(item.wire_size())
        else:
            total += 16  # opaque object
    return total


@dataclass
class Message:
    """One simulated network message."""

    sender: str
    recipient: str
    kind: str
    payload: Any = None
    size: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.size:
            self.size = HEADER_BYTES + estimate_size(self.payload)
