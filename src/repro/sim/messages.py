"""Message envelope and size accounting.

The simulator charges each message a size: a fixed header plus the
payload's estimated wire size.  Sizes only feed the latency model — the
correctness of the protocols never depends on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Fixed per-message overhead (addressing, kind tag, ...), in bytes.
HEADER_BYTES = 32


def estimate_size(payload: Any) -> int:
    """Rough wire size of a message payload, in bytes.

    Counts byte strings at face value, numbers as 8 bytes, strings by
    length, and containers recursively.  Deliberately simple — it feeds a
    latency *model*, not an implementation.
    """
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, str):
        return len(payload)
    if isinstance(payload, dict):
        return sum(estimate_size(k) + estimate_size(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(estimate_size(v) for v in payload)
    if hasattr(payload, "wire_size"):
        return int(payload.wire_size())
    return 16  # opaque object


@dataclass
class Message:
    """One simulated network message."""

    sender: str
    recipient: str
    kind: str
    payload: Any = None
    size: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.size:
            self.size = HEADER_BYTES + estimate_size(self.payload)
