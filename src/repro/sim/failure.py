"""Failure injection: deterministic crashes, availability sampling, schedules.

Three styles of unavailability drive the experiments:

* **Targeted crashes** — fail exactly these nodes now (recovery tests,
  experiments E7/E8).
* **Probabilistic sampling** — each node independently unavailable with
  probability ``1 - p`` (the paper's availability model, Monte-Carlo
  cross-check of experiment E5).
* **Schedules** — crash/restore windows and flaky nodes (exponential
  MTBF/MTTR), applied as the network's logical clock advances.  The
  injector registers itself as a clock listener; schedules fire between
  operation chains, never mid-delivery.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Sequence

import numpy as np

from repro.sim.network import Network
from repro.sim.rng import make_rng


class FailureInjector:
    """Applies and reverts failure scenarios on a :class:`Network`."""

    def __init__(self, network: Network, rng: np.random.Generator | None = None):
        self.network = network
        self.rng = rng or make_rng()
        self._injected: set[str] = set()
        #: min-heap of (at, seq, action, node_id); seq breaks ties stably
        self._schedule: list[tuple[float, int, str, str]] = []
        self._seq = 0
        #: node_id -> (mtbf, mttr) for flaky nodes
        self._flaky: dict[str, tuple[float, float]] = {}
        #: chronological (now, action, node_id) record of applied events
        self.event_log: list[tuple[float, str, str]] = []
        self._listening = False

    # ------------------------------------------------------------------
    # immediate failures
    # ------------------------------------------------------------------
    def crash(self, node_ids: Iterable[str]) -> list[str]:
        """Fail the given nodes; returns the list actually failed."""
        failed = []
        for node_id in node_ids:
            if self.network.is_available(node_id):
                self.network.fail(node_id)
                self._injected.add(node_id)
                failed.append(node_id)
        return failed

    def crash_sample(self, candidates: Sequence[str], count: int) -> list[str]:
        """Fail ``count`` distinct nodes drawn uniformly from candidates."""
        if count > len(candidates):
            raise ValueError("cannot fail more nodes than exist")
        chosen = self.rng.choice(len(candidates), size=count, replace=False)
        return self.crash(candidates[i] for i in chosen)

    def sample_availability(self, candidates: Sequence[str], p: float) -> list[str]:
        """Each candidate fails independently with probability ``1 - p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("availability p must be in [0, 1]")
        draws = self.rng.random(len(candidates))
        return self.crash(
            node for node, draw in zip(candidates, draws) if draw >= p
        )

    # ------------------------------------------------------------------
    def heal(self, node_ids: Iterable[str] | None = None, force: bool = False) -> None:
        """Restore nodes (default: everything this injector failed).

        Healing a node this injector never failed is a scenario bug —
        it usually means a misspelled id silently "recovered" — and
        raises :class:`ValueError` unless ``force=True`` opts in (e.g.
        to clear failures applied directly through ``network.fail``).

        A normal heal routes the node through the rejoin handshake
        (``Network.restore`` fires its ``on_restored`` hook: local
        replay, fencing, delta catch-up).  ``force=True`` doubles as
        the legacy *silent* restore — state intact, nobody told — the
        escape hatch the pre-durability chaos suites pin.
        """
        targets = list(node_ids) if node_ids is not None else sorted(self._injected)
        for node_id in targets:
            if node_id not in self._injected and not force:
                raise ValueError(
                    f"node {node_id!r} was not failed by this injector "
                    "(pass force=True to restore it anyway)"
                )
            self.network.restore(node_id, silent=force)
            self._injected.discard(node_id)

    @property
    def currently_failed(self) -> list[str]:
        """Nodes this injector failed and has not healed (sorted)."""
        return sorted(self._injected)

    # ------------------------------------------------------------------
    # schedules (driven by the network's logical clock)
    # ------------------------------------------------------------------
    def _ensure_listening(self) -> None:
        if not self._listening:
            self.network.add_clock_listener(self.on_tick)
            self._listening = True

    def _push(self, at: float, action: str, node_id: str) -> None:
        heapq.heappush(self._schedule, (at, self._seq, action, node_id))
        self._seq += 1

    def schedule_crash(self, node_id: str, at: float, duration: float | None = None) -> None:
        """Crash ``node_id`` at simulation time ``at``.

        With ``duration`` the node restores itself ``duration`` clock
        units later (a crash/restore window); without, it stays down
        until healed or rebuilt.
        """
        if at < self.network.now:
            raise ValueError("cannot schedule a crash in the past")
        if duration is not None and duration <= 0:
            raise ValueError("crash duration must be positive")
        self._ensure_listening()
        self._push(at, "crash", node_id)
        if duration is not None:
            self._push(at + duration, "restore", node_id)

    def make_flaky(self, node_ids: Iterable[str], mtbf: float, mttr: float) -> None:
        """Give nodes exponential failure/repair cycles (MTBF/MTTR).

        Each node runs for Exp(mtbf) clock units, crashes, stays down
        for Exp(mttr), restores, and repeats — the renewal process
        lifetime studies assume.  Draws come from the injector's seeded
        generator, so a given seed yields one reproducible lifetime.
        """
        if mtbf <= 0 or mttr <= 0:
            raise ValueError("mtbf and mttr must be positive")
        self._ensure_listening()
        for node_id in node_ids:
            self._flaky[node_id] = (mtbf, mttr)
            up_for = float(self.rng.exponential(mtbf))
            self._push(self.network.now + up_for, "crash", node_id)

    def on_tick(self, now: float) -> None:
        """Apply every scheduled event with ``at <= now`` (clock listener)."""
        while self._schedule and self._schedule[0][0] <= now:
            _, _, action, node_id = heapq.heappop(self._schedule)
            if action == "crash":
                if self.network.is_available(node_id):
                    self.network.fail(node_id)
                    self._injected.add(node_id)
                    self.event_log.append((now, "crash", node_id))
                if node_id in self._flaky:
                    _, mttr = self._flaky[node_id]
                    self._push(now + float(self.rng.exponential(mttr)), "restore", node_id)
            else:  # restore
                # The node may have been rebuilt onto a spare (and its id
                # unregistered) while down; a vanished id just means the
                # restore lost the race with recovery.
                if node_id in self.network.nodes:
                    if node_id in self.network.failed:
                        self.event_log.append((now, "restore", node_id))
                    self.network.restore(node_id)
                self._injected.discard(node_id)
                if node_id in self._flaky:
                    mtbf, _ = self._flaky[node_id]
                    self._push(now + float(self.rng.exponential(mtbf)), "crash", node_id)

    def stop_flaky(self, node_ids: Iterable[str] | None = None) -> None:
        """Stop scheduling new cycles for flaky nodes (pending events stay)."""
        targets = list(node_ids) if node_ids is not None else list(self._flaky)
        for node_id in targets:
            self._flaky.pop(node_id, None)

    @property
    def pending_events(self) -> int:
        """Scheduled crash/restore events not yet applied."""
        return len(self._schedule)
