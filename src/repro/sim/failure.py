"""Failure injection: deterministic crashes and availability sampling.

Two styles of unavailability drive the experiments:

* **Targeted crashes** — fail exactly these nodes now (recovery tests,
  experiments E7/E8).
* **Probabilistic sampling** — each node independently unavailable with
  probability ``1 - p`` (the paper's availability model, Monte-Carlo
  cross-check of experiment E5).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.sim.network import Network
from repro.sim.rng import make_rng


class FailureInjector:
    """Applies and reverts failure scenarios on a :class:`Network`."""

    def __init__(self, network: Network, rng: np.random.Generator | None = None):
        self.network = network
        self.rng = rng or make_rng()
        self._injected: list[str] = []

    # ------------------------------------------------------------------
    def crash(self, node_ids: Iterable[str]) -> list[str]:
        """Fail the given nodes; returns the list actually failed."""
        failed = []
        for node_id in node_ids:
            if self.network.is_available(node_id):
                self.network.fail(node_id)
                self._injected.append(node_id)
                failed.append(node_id)
        return failed

    def crash_sample(self, candidates: Sequence[str], count: int) -> list[str]:
        """Fail ``count`` distinct nodes drawn uniformly from candidates."""
        if count > len(candidates):
            raise ValueError("cannot fail more nodes than exist")
        chosen = self.rng.choice(len(candidates), size=count, replace=False)
        return self.crash(candidates[i] for i in chosen)

    def sample_availability(self, candidates: Sequence[str], p: float) -> list[str]:
        """Each candidate fails independently with probability ``1 - p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("availability p must be in [0, 1]")
        draws = self.rng.random(len(candidates))
        return self.crash(
            node for node, draw in zip(candidates, draws) if draw >= p
        )

    # ------------------------------------------------------------------
    def heal(self, node_ids: Iterable[str] | None = None) -> None:
        """Restore the given nodes (default: everything this injector failed)."""
        targets = list(node_ids) if node_ids is not None else list(self._injected)
        for node_id in targets:
            self.network.restore(node_id)
            if node_id in self._injected:
                self._injected.remove(node_id)

    @property
    def currently_failed(self) -> list[str]:
        """Nodes this injector failed and has not healed."""
        return list(self._injected)
