"""Finding records and their stable fingerprints."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation at one place.

    ``line`` is advisory (0 = whole file); the fingerprint deliberately
    excludes it so baselined findings survive unrelated code motion.
    ``symbol`` anchors the finding to a stable name (a message kind, a
    handler, a metric) for the same reason.
    """

    check: str   #: rule id, e.g. ``proto.unregistered-kind``
    path: str    #: repo-relative posix path
    line: int    #: 1-based source line (0 = file-level)
    message: str
    symbol: str = ""

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-independent)."""
        raw = f"{self.check}|{self.path}|{self.symbol}|{self.message}"
        return hashlib.sha1(raw.encode()).hexdigest()[:16]

    def format(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: {self.check}: {self.message}"

    def to_json(self) -> dict:
        return {
            "check": self.check,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }
