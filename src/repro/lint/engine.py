"""The lint runner: sources in, findings out, pragmas honored."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding
from repro.lint.pragmas import code_matches
from repro.lint.sources import SourceFile, load_sources


def default_root() -> Path:
    """The repo root, derived from the installed package location
    (``src/repro/lint/engine.py`` -> three parents up)."""
    return Path(__file__).resolve().parents[3]


class LintContext:
    """Shared state all checkers write findings through.

    :meth:`report` applies pragma suppression centrally: a finding on
    line *L* is dropped when a matching ``# lint: allow[...]`` pragma
    sits on *L* or *L-1*, and the pragma is marked used (the pragma
    checker flags the rest).
    """

    def __init__(
        self,
        root: Path,
        sources: list[SourceFile],
        registry: dict | None = None,
        event_types: frozenset[str] | None = None,
    ):
        if registry is None:
            from repro.proto.schema import REGISTRY
            registry = REGISTRY
        if event_types is None:
            from repro.obs.trace import EVENT_TYPES
            event_types = EVENT_TYPES
        self.root = root
        self.sources = sources
        self.registry = registry
        self.event_types = event_types
        self.findings: list[Finding] = []
        self.suppressed: list[Finding] = []
        #: pragmas that suppressed at least one finding: (rel, line, code)
        self.used_pragmas: set[tuple[str, int, str]] = set()
        #: free-form counters checkers expose (dynamic send sites, ...)
        self.stats: dict[str, int] = {}

    def bump(self, stat: str, amount: int = 1) -> None:
        self.stats[stat] = self.stats.get(stat, 0) + amount

    def report(
        self,
        check: str,
        source: SourceFile | None,
        line: int,
        message: str,
        symbol: str = "",
    ) -> None:
        path = source.rel if source is not None else "docs/protocol.md"
        finding = Finding(check, path, line, message, symbol)
        if source is not None:
            for pragma_line in (line, line - 1):
                codes = source.pragmas.get(pragma_line)
                if not codes:
                    continue
                for code in sorted(codes):
                    if code_matches(code, check):
                        self.used_pragmas.add(
                            (source.rel, pragma_line, code)
                        )
                        self.suppressed.append(finding)
                        return
        self.findings.append(finding)

    def report_global(
        self, check: str, path: str, message: str, symbol: str = ""
    ) -> None:
        """A finding with no source line to hang a pragma on (registry
        gaps, docs drift) — baseline-suppressable only."""
        self.findings.append(Finding(check, path, 0, message, symbol))


def _build_checks() -> dict:
    # Imported lazily so the checker modules can import engine types.
    from repro.lint.checkers import determinism, docs_sync, pragma_hygiene
    from repro.lint.checkers import protocol, seqguard, taxonomy

    # Order matters only for the pragma checker, which audits what the
    # others used — it must run last.
    return {
        "proto": protocol.check,
        "determinism": determinism.check,
        "taxonomy": taxonomy.check,
        "seq-guard": seqguard.check,
        "docs": docs_sync.check,
        "pragma": pragma_hygiene.check,
    }


#: Checker registry: name -> fn(ctx).  Names double as rule-id roots.
CHECKS = _build_checks()


def all_rules() -> frozenset[str]:
    """Every rule id any checker can emit (pragma validation)."""
    from repro.lint.checkers import determinism, docs_sync, pragma_hygiene
    from repro.lint.checkers import protocol, seqguard, taxonomy

    rules: set[str] = set()
    for module in (
        protocol, determinism, taxonomy, seqguard, docs_sync, pragma_hygiene
    ):
        rules.update(module.RULES)
    return frozenset(rules)


@dataclass
class LintResult:
    """One lint run's outcome."""

    findings: list[Finding]          #: new findings (not baselined)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict] = field(default_factory=list)
    suppressed: int = 0
    stats: dict[str, int] = field(default_factory=dict)
    checks: tuple[str, ...] = ()

    def ok(self, strict: bool = False) -> bool:
        if self.findings:
            return False
        return not (strict and self.stale_baseline)

    def to_json(self) -> dict:
        return {
            "findings": [f.to_json() for f in self.findings],
            "baselined": [f.to_json() for f in self.baselined],
            "stale_baseline": self.stale_baseline,
            "suppressed": self.suppressed,
            "stats": dict(sorted(self.stats.items())),
            "checks": list(self.checks),
        }


def run_lint(
    root: Path | None = None,
    sources: list[SourceFile] | None = None,
    checks: list[str] | None = None,
    baseline: Baseline | None = None,
    registry: dict | None = None,
    event_types: frozenset[str] | None = None,
) -> LintResult:
    """Run the selected checkers (default: all) and apply the baseline.

    Fixture tests inject synthetic ``sources`` / ``registry`` /
    ``event_types``; the CLI passes only ``root`` and a baseline.
    """
    if root is None:
        root = default_root()
    if sources is None:
        sources = load_sources(root)
    selected = list(CHECKS) if checks is None else list(checks)
    unknown = [name for name in selected if name not in CHECKS]
    if unknown:
        raise ValueError(f"unknown checks: {unknown}")
    if "pragma" in selected:  # always audits last
        selected = [n for n in selected if n != "pragma"] + ["pragma"]
    ctx = LintContext(root, sources, registry, event_types)
    for name in selected:
        CHECKS[name](ctx)
    findings = sorted(
        ctx.findings, key=lambda f: (f.path, f.line, f.check, f.message)
    )
    new, baselined, stale = (
        (findings, [], [])
        if baseline is None
        else baseline.partition(findings)
    )
    return LintResult(
        findings=new,
        baselined=baselined,
        stale_baseline=stale,
        suppressed=len(ctx.suppressed),
        stats=ctx.stats,
        checks=tuple(selected),
    )
