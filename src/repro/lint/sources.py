"""Source loading: parsed files with their pragma tables."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.pragmas import parse_pragmas


class SourceFile:
    """One parsed python source under analysis."""

    def __init__(self, rel: str, text: str):
        #: repo-relative posix path (``src/repro/...`` for real files;
        #: fixture tests use synthetic names).
        self.rel = rel
        self.text = text
        self.tree = ast.parse(text, filename=rel)
        self.pragmas = parse_pragmas(text)

    @classmethod
    def from_path(cls, root: Path, path: Path) -> "SourceFile":
        rel = path.relative_to(root).as_posix()
        return cls(rel, path.read_text())

    def __repr__(self) -> str:
        return f"SourceFile({self.rel!r})"


def load_sources(root: Path) -> list[SourceFile]:
    """Every python file under ``src/repro``, sorted by path."""
    base = root / "src" / "repro"
    return [
        SourceFile.from_path(root, path)
        for path in sorted(base.rglob("*.py"))
    ]
