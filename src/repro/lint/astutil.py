"""Small AST helpers shared by the checkers."""

from __future__ import annotations

import ast
from typing import Iterator


def innermost_functions(tree: ast.AST) -> dict[int, ast.AST]:
    """Map ``id(node)`` -> innermost enclosing function def (if any)."""
    owner: dict[int, ast.AST] = {}

    def visit(node: ast.AST, current: ast.AST | None) -> None:
        for child in ast.iter_child_nodes(node):
            if current is not None:
                owner[id(child)] = current
            nxt = (
                child
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                )
                else current
            )
            visit(child, nxt)

    visit(tree, None)
    return owner


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def receiver_text(call: ast.Call) -> str:
    """Source text of a method call's receiver (``''`` for bare names)."""
    if isinstance(call.func, ast.Attribute):
        try:
            return ast.unparse(call.func.value)
        except Exception:  # pragma: no cover - unparse is total on 3.10+
            return ""
    return ""


def literal_strings(
    expr: ast.AST, func: ast.AST | None, depth: int = 0
) -> set[str] | None:
    """Statically resolvable string values of ``expr`` (None = dynamic).

    Resolves constants, ``a if c else b`` ternaries, and local names
    whose every assignment in the enclosing function is itself
    resolvable — enough for the ``kind = "x" if flag else "y"`` pattern
    without building a real dataflow analysis.  Loop targets and
    parameters are dynamic by definition.
    """
    if depth > 4:
        return None
    if isinstance(expr, ast.Constant):
        return {expr.value} if isinstance(expr.value, str) else None
    if isinstance(expr, ast.IfExp):
        left = literal_strings(expr.body, func, depth + 1)
        right = literal_strings(expr.orelse, func, depth + 1)
        if left is not None and right is not None:
            return left | right
        return None
    if isinstance(expr, ast.Name) and func is not None:
        name = expr.id
        args = getattr(func, "args", None)
        if args is not None:
            params = {
                a.arg
                for a in (
                    list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])
                )
            }
            if name in params:
                return None
        values: list[ast.AST] = []
        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name) and target.id == name:
                        return None
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        values.append(node.value)
                    elif not isinstance(target, ast.Name):
                        for sub in ast.walk(target):
                            if (
                                isinstance(sub, ast.Name)
                                and sub.id == name
                            ):
                                return None
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                if isinstance(target, ast.Name) and target.id == name:
                    if node.value is None:
                        return None
                    values.append(node.value)
            elif isinstance(node, (ast.AugAssign, ast.NamedExpr)):
                target = node.target
                if isinstance(target, ast.Name) and target.id == name:
                    return None
        if not values:
            return None
        out: set[str] = set()
        for value in values:
            resolved = literal_strings(value, func, depth + 1)
            if resolved is None:
                return None
            out |= resolved
        return out
    return None


def walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def const_str_arg(call: ast.Call, index: int) -> ast.AST | None:
    """The ``index``-th positional argument expression, if present."""
    if len(call.args) > index:
        arg = call.args[index]
        return None if isinstance(arg, ast.Starred) else arg
    return None
