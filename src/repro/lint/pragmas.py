"""Inline suppression pragmas: ``# lint: allow[rule, rule2]``.

A pragma suppresses matching findings reported on its own line or on
the line directly below (so a standalone pragma comment can sit above a
multi-line statement).  Codes match hierarchically: ``determinism``
suppresses ``determinism.wall-clock``; ``*`` suppresses everything.

The pragma checker (last in the run) reports pragmas whose code names
no known rule and pragmas that suppressed nothing — dead suppressions
rot exactly like dead baselines.
"""

from __future__ import annotations

import io
import re
import tokenize

PRAGMA_RE = re.compile(r"lint:\s*allow\[([^\]]*)\]")


def parse_pragmas(text: str) -> dict[int, set[str]]:
    """Map of 1-based line -> allow-codes declared on that line.

    Only real comment tokens count — a pragma spelled inside a string
    literal is inert (and therefore never "unused" either).
    """
    pragmas: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = PRAGMA_RE.search(token.string)
            if match is None:
                continue
            codes = {
                code.strip() for code in match.group(1).split(",")
                if code.strip()
            }
            if codes:
                pragmas.setdefault(token.start[0], set()).update(codes)
    except tokenize.TokenError:
        pass  # a syntactically broken file fails elsewhere, loudly
    return pragmas


def code_matches(code: str, check: str) -> bool:
    """Does pragma/allow ``code`` cover rule id ``check``?"""
    return code == "*" or code == check or check.startswith(code + ".")
