"""The ``python -m repro lint`` subcommand."""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Callable

from repro.lint.baseline import Baseline
from repro.lint.engine import CHECKS, default_root, run_lint

DEFAULT_BASELINE = "tools/lint_baseline.json"


def configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries (the CI mode)",
    )
    parser.add_argument(
        "--root", default=None,
        help="repo root (default: derived from the package location)",
    )
    parser.add_argument(
        "--check", action="append", default=None, metavar="NAME",
        choices=sorted(CHECKS),
        help="run only this checker (repeatable); default: all",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="grandfather every current finding into the baseline",
    )
    parser.add_argument(
        "--protocol-table", action="store_true",
        help="print the generated docs/protocol.md kind index and exit",
    )


def run(
    args: argparse.Namespace, out: Callable[[str], None]
) -> tuple[int, dict]:
    if args.protocol_table:
        from repro.proto.schema import render_protocol_table

        table = render_protocol_table()
        out(table.rstrip("\n"))
        return 0, {"protocol_table": table}

    root = Path(args.root) if args.root else default_root()
    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )
    baseline = Baseline.load(baseline_path)
    result = run_lint(root=root, checks=args.check, baseline=baseline)

    if args.write_baseline:
        count = Baseline.write(
            baseline_path,
            result.findings + result.baselined,
            baseline,
        )
        out(f"baseline written: {count} entry(ies) -> {baseline_path}")
        return 0, {"baseline_entries": count}

    for finding in result.findings:
        out(finding.format())
    for entry in result.stale_baseline:
        out(
            f"stale baseline entry: {entry.get('check')} "
            f"{entry.get('path')} {entry.get('message')!r} — fixed? "
            "remove it (python -m repro lint --write-baseline)"
        )
    checked = ", ".join(result.checks)
    out(
        f"lint: {len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.stale_baseline)} stale baseline entry(ies), "
        f"{result.suppressed} pragma-suppressed [{checked}]"
    )
    status = 0 if result.ok(strict=args.strict) else 1
    return status, result.to_json()
