"""Grandfathered findings: the baseline file.

``tools/lint_baseline.json`` holds findings that predate a checker (or
are accepted for a documented reason) keyed by their line-independent
fingerprints.  ``python -m repro lint --strict`` fails on any finding
*not* in the baseline — and on any baseline entry that no longer
matches a live finding, so fixed violations must leave the file
(``--write-baseline`` rewrites it from the current run, preserving the
``reason`` of entries that survive).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.findings import Finding


class Baseline:
    """The set of grandfathered finding fingerprints."""

    def __init__(self, entries: list[dict] | None = None):
        self.entries: list[dict] = entries or []

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        return cls(list(data.get("entries", [])))

    def fingerprints(self) -> dict[str, dict]:
        return {
            entry["fingerprint"]: entry
            for entry in self.entries
            if "fingerprint" in entry
        }

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[dict]]:
        """Split findings into (new, baselined); third = stale entries."""
        known = self.fingerprints()
        new: list[Finding] = []
        baselined: list[Finding] = []
        matched: set[str] = set()
        for finding in findings:
            fp = finding.fingerprint()
            if fp in known:
                baselined.append(finding)
                matched.add(fp)
            else:
                new.append(finding)
        stale = [
            entry for fp, entry in known.items() if fp not in matched
        ]
        return new, baselined, stale

    @staticmethod
    def write(
        path: Path, findings: list[Finding], previous: "Baseline"
    ) -> int:
        """Rewrite the baseline from ``findings``; returns the count.

        ``reason`` strings of surviving entries are preserved — a
        baseline entry without a reason is a smell the doc workflow
        (docs/static_analysis.md) tells reviewers to push back on.
        """
        reasons = {
            entry["fingerprint"]: entry.get("reason", "")
            for entry in previous.entries
            if "fingerprint" in entry
        }
        entries = []
        for finding in sorted(
            findings, key=lambda f: (f.path, f.check, f.symbol, f.message)
        ):
            fp = finding.fingerprint()
            entries.append(
                {
                    "check": finding.check,
                    "path": finding.path,
                    "symbol": finding.symbol,
                    "message": finding.message,
                    "fingerprint": fp,
                    "reason": reasons.get(fp, ""),
                }
            )
        payload = {
            "comment": (
                "Grandfathered repro.lint findings; every entry needs a "
                "reason.  Regenerate with "
                "`python -m repro lint --write-baseline`."
            ),
            "entries": entries,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return len(entries)
