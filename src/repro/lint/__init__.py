"""Protocol-conformance & determinism static analysis (``repro.lint``).

AST-based checkers that make the repo's implicit contracts statically
enforceable instead of hand-synced or found-per-seed:

* ``proto``       — every send/call site, every ``handle_*`` method and
  the :mod:`repro.proto` registry must agree (kinds *and* payload
  fields);
* ``determinism`` — no wall-clock time, no unseeded randomness, no
  iteration over sets in ``src/repro`` (byte-identical seeded traces
  depend on it);
* ``taxonomy``    — every statically resolvable ``tracer.emit`` type is
  registered in ``EVENT_TYPES``; metric names obey the naming grammar;
* ``seq-guard``   — Δ-applying handlers reference their per-channel
  sequence check;
* ``docs``        — the generated message-kind index in
  ``docs/protocol.md`` matches the registry byte-for-byte;
* ``pragma``      — every ``# lint: allow[...]`` pragma is known and
  actually suppresses something.

Run it with ``python -m repro lint`` (``--strict`` in CI); suppress a
single finding with an inline ``# lint: allow[<rule>]`` pragma or
grandfather it in ``tools/lint_baseline.json``.  See
``docs/static_analysis.md``.
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import CHECKS, LintResult, run_lint
from repro.lint.findings import Finding

__all__ = ["Baseline", "CHECKS", "Finding", "LintResult", "run_lint"]
