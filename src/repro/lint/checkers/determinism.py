"""Determinism hygiene: no wall clocks, no unseeded randomness, no
set-order dependence under ``src/repro``.

Byte-identical seeded traces (the replay-determinism CI gate) require
that nothing in the simulation reads wall-clock time, draws from global
RNG state, or lets a hash-order ``set`` iteration decide message or
record order.  Justified exceptions (the CLI's CPU-throughput timer)
carry an inline ``# lint: allow[determinism.wall-clock]`` pragma.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import dotted_name, innermost_functions

RULES = (
    "determinism.wall-clock",
    "determinism.unseeded-rng",
    "determinism.set-iter",
)

WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

UNSEEDED = {
    "os.urandom",
    "uuid.uuid4",
    "uuid.uuid1",
}

_SET_METHODS = {
    "difference", "union", "intersection", "symmetric_difference",
}


def _import_map(tree: ast.AST) -> dict[str, str]:
    """Local alias -> canonical dotted module/object name."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _canonical(call_name: str, aliases: dict[str, str]) -> str:
    head, _, rest = call_name.partition(".")
    base = aliases.get(head, head)
    return f"{base}.{rest}" if rest else base


def _is_set_expr(expr: ast.AST, func: ast.AST | None, depth: int = 0) -> bool:
    """Heuristic: does this expression evaluate to a set?"""
    if depth > 3:
        return False
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Name) and expr.func.id in (
            "set", "frozenset"
        ):
            return True
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _SET_METHODS
        ):
            return True
        return False
    if isinstance(expr, ast.Name) and func is not None:
        assigned = False
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == expr.id
                    ):
                        if not _is_set_expr(node.value, func, depth + 1):
                            return False
                        assigned = True
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                if isinstance(target, ast.Name) and target.id == expr.id:
                    annotation = ast.unparse(node.annotation)
                    if annotation.startswith(("set", "frozenset")):
                        assigned = True
                    elif node.value is None or not _is_set_expr(
                        node.value, func, depth + 1
                    ):
                        return False
                    else:
                        assigned = True
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Name) and target.id == expr.id:
                    return assigned  # |= keeps the set shape if seeded so
        return assigned
    return False


def check(ctx) -> None:
    for source in ctx.sources:
        aliases = _import_map(source.tree)
        owner = innermost_functions(source.tree)

        for node in ast.walk(source.tree):
            # forbidden calls ------------------------------------------
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                canonical = _canonical(name, aliases)
                if canonical in WALL_CLOCK:
                    ctx.report(
                        "determinism.wall-clock", source, node.lineno,
                        f"{canonical}() reads the wall clock — use the "
                        "simulated clock (Network.now/virtual_time)",
                        symbol=canonical,
                    )
                elif canonical in UNSEEDED or canonical.startswith(
                    "random."
                ):
                    ctx.report(
                        "determinism.unseeded-rng", source, node.lineno,
                        f"{canonical}() draws from unseeded/global "
                        "randomness — use a seeded np.random.Generator",
                        symbol=canonical,
                    )
                elif canonical.startswith("numpy.random."):
                    tail = canonical.removeprefix("numpy.random.")
                    if tail == "default_rng":
                        if not node.args and not node.keywords:
                            ctx.report(
                                "determinism.unseeded-rng", source,
                                node.lineno,
                                "default_rng() without a seed is "
                                "entropy-seeded — pass an explicit seed",
                                symbol=canonical,
                            )
                    elif tail[:1].islower():
                        # module-level numpy RNG (np.random.rand, .seed,
                        # .shuffle, ...) shares mutable global state.
                        ctx.report(
                            "determinism.unseeded-rng", source,
                            node.lineno,
                            f"np.random.{tail}() uses numpy's global "
                            "RNG state — use a seeded Generator",
                            symbol=canonical,
                        )
                continue

            # set iteration --------------------------------------------
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it, owner.get(id(node))):
                    ctx.report(
                        "determinism.set-iter", source, node.lineno,
                        "iterating a set: order is hash-dependent — "
                        "iterate sorted(...) or keep a list/dict",
                    )
