"""Pragma hygiene: suppressions must be real and alive.

Runs last: the engine records which ``# lint: allow[...]`` pragmas
suppressed a finding this run; anything left is either a typo
(``pragma.unknown`` — the code names no rule) or a dead suppression
(``pragma.unused`` — nothing to suppress anymore, delete it).
"""

from __future__ import annotations

from repro.lint.pragmas import code_matches

RULES = ("pragma.unknown", "pragma.unused")


def check(ctx) -> None:
    from repro.lint.engine import all_rules

    rules = all_rules()
    for source in ctx.sources:
        for line, codes in sorted(source.pragmas.items()):
            for code in sorted(codes):
                if code != "*" and not any(
                    code_matches(code, rule) for rule in rules
                ):
                    ctx.report(
                        "pragma.unknown", source, line,
                        f"allow[{code}] names no known lint rule",
                        symbol=code,
                    )
                elif (source.rel, line, code) not in ctx.used_pragmas:
                    ctx.report(
                        "pragma.unused", source, line,
                        f"allow[{code}] suppresses nothing — remove it",
                        symbol=code,
                    )
