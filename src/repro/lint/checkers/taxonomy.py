"""Taxonomy conformance: trace event types and metric names.

Every statically resolvable ``tracer.emit("<type>", ...)`` must name a
type registered in :data:`repro.obs.trace.EVENT_TYPES` (the runtime
raises too, but only when observability happens to be on — this makes
the typo a lint error on every run), and every metric instrument name
must match :data:`repro.proto.schema.METRIC_NAME_RE` so exporters and
dashboards can rely on one grammar.  F-string names are validated on
their literal segments with placeholders treated as one segment body.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import receiver_text, walk_calls
from repro.proto.schema import METRIC_NAME_RE

RULES = (
    "taxonomy.unknown-event",
    "taxonomy.metric-name",
)

_METRIC_ATTRS = {"counter", "gauge", "histogram"}


def _fstring_probe(node: ast.JoinedStr) -> str | None:
    """A grammar probe for an f-string name: placeholders become ``x``.

    Returns None when a placeholder abuts nothing checkable (empty
    literal parts only).
    """
    parts: list[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        elif isinstance(value, ast.FormattedValue):
            parts.append("x")
        else:
            return None
    return "".join(parts)


def check(ctx) -> None:
    for source in ctx.sources:
        for call in walk_calls(source.tree):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = receiver_text(call).lower()

            # trace events -------------------------------------------------
            if func.attr == "emit" and "trace" in receiver:
                if not call.args:
                    continue
                arg = call.args[0]
                if isinstance(arg, ast.Constant) and isinstance(
                    arg.value, str
                ):
                    if arg.value not in ctx.event_types:
                        ctx.report(
                            "taxonomy.unknown-event", source, call.lineno,
                            f"trace event type {arg.value!r} is not in "
                            "EVENT_TYPES (repro/obs/trace.py)",
                            symbol=arg.value,
                        )
                else:
                    ctx.bump("taxonomy.dynamic-events")

            # metric names -------------------------------------------------
            elif func.attr in _METRIC_ATTRS and (
                "metric" in receiver or receiver.endswith("registry")
            ):
                if not call.args:
                    continue
                arg = call.args[0]
                if isinstance(arg, ast.Constant) and isinstance(
                    arg.value, str
                ):
                    name = arg.value
                elif isinstance(arg, ast.JoinedStr):
                    probe = _fstring_probe(arg)
                    if probe is None:
                        ctx.bump("taxonomy.dynamic-metrics")
                        continue
                    name = probe
                else:
                    ctx.bump("taxonomy.dynamic-metrics")
                    continue
                if not METRIC_NAME_RE.match(name):
                    ctx.report(
                        "taxonomy.metric-name", source, call.lineno,
                        f"metric name {name!r} violates the naming "
                        "grammar (dotted lowercase, [a-z0-9_] segments)",
                        symbol=name,
                    )
