"""The checker modules; each exports ``check(ctx)`` and ``RULES``."""
