"""Protocol conformance: sent-set == handled-set == registry-set.

Walks every ``.send(...)`` / ``.call(...)`` / ``.multicast(...)`` site
and every ``handle_*`` definition under ``src/repro`` and cross-checks
them against :data:`repro.proto.schema.REGISTRY`:

* a statically resolvable kind at a send site that the registry does
  not know — ``proto.unregistered-kind``;
* a registry kind whose ``handle_*`` method exists nowhere —
  ``proto.unhandled-kind``;
* a ``handle_*`` definition (or alias assignment) no registry kind
  dispatches to — ``proto.dead-handler``;
* a registry kind with no send site *and* no string-literal evidence
  anywhere (a retired message nobody can emit) — ``proto.unsent-kind``;
* a dict-literal payload carrying a field the registry does not list —
  ``proto.payload-unknown-field`` — or missing a required field —
  ``proto.payload-missing-field``;
* a handler reading a payload field the registry does not list —
  ``proto.payload-unregistered-read``.

Kind arguments that are genuinely dynamic (``message.kind`` forwards,
parameterized helpers) are counted in ``stats["proto.dynamic-sites"]``
rather than guessed at.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import (
    innermost_functions,
    literal_strings,
    receiver_text,
    walk_calls,
)
from repro.proto.schema import handler_name

RULES = (
    "proto.unregistered-kind",
    "proto.unhandled-kind",
    "proto.dead-handler",
    "proto.unsent-kind",
    "proto.payload-unknown-field",
    "proto.payload-missing-field",
    "proto.payload-unregistered-read",
)

#: Files whose string literals are not send evidence: the registry and
#: this suite mention every kind by construction.
EVIDENCE_EXEMPT = ("repro/proto/", "repro/lint/")

_SEND_ATTRS = {"send", "call", "multicast"}


def _kind_index(call: ast.Call) -> int:
    """Position of the ``kind`` argument at this site.

    ``Node.send/call(recipient, kind, ...)`` puts it second;
    ``Network.send/call(sender, recipient, kind, ...)`` and
    ``multicast(sender, targets, kind)`` put it third.  Network
    handles are invariably named ``net``/``network``/``self._net…`` —
    the naming convention the codebase already relies on for humans.
    """
    func = call.func
    assert isinstance(func, ast.Attribute)
    if func.attr == "multicast":
        return 2
    return 2 if "net" in receiver_text(call).lower() else 1


def _payload_expr(call: ast.Call, kind_index: int) -> ast.AST | None:
    for keyword in call.keywords:
        if keyword.arg == "payload":
            return keyword.value
    if len(call.args) > kind_index + 1:
        return call.args[kind_index + 1]
    return None


def _literal_dict_keys(expr: ast.AST) -> tuple[set[str], bool] | None:
    """(keys, closed) for a dict literal; None for anything else.

    ``closed`` is False when the literal contains ``**`` expansions or
    non-constant keys — then only the present literal keys are checked,
    not completeness.
    """
    if not isinstance(expr, ast.Dict):
        return None
    keys: set[str] = set()
    closed = True
    for key in expr.keys:
        if key is None:  # **expansion
            closed = False
        elif isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
        else:
            closed = False
    return keys, closed


def _handler_defs(tree: ast.AST) -> list[tuple[str, int]]:
    """(name, line) of every ``handle_*`` def and alias assignment."""
    out: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith("handle_"):
                out.append((node.name, node.lineno))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id.startswith("handle_")
                ):
                    out.append((target.id, node.lineno))
    return out


def _payload_names(func: ast.AST) -> set[str]:
    """Local names bound to ``message.payload`` inside a handler."""
    names: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "dict"
            and value.args
        ):
            value = value.args[0]
        if isinstance(value, ast.Attribute) and value.attr == "payload":
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _payload_reads(func: ast.AST) -> list[tuple[str, int]]:
    """(field, line) for every literal top-level payload access."""
    aliases = _payload_names(func)

    def is_payload(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Attribute) and expr.attr == "payload":
            return True
        return isinstance(expr, ast.Name) and expr.id in aliases

    reads: list[tuple[str, int]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Subscript) and is_payload(node.value):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(
                index.value, str
            ):
                reads.append((index.value, node.lineno))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and is_payload(node.func.value)
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            reads.append((node.args[0].value, node.lineno))
    return reads


def check(ctx) -> None:
    registry = ctx.registry
    kind_of_handler = {handler_name(kind): kind for kind in registry}
    seen_handlers: set[str] = set()
    sent_kinds: set[str] = set()
    literal_evidence: set[str] = set()

    for source in ctx.sources:
        exempt = any(part in source.rel for part in EVIDENCE_EXEMPT)
        owner = innermost_functions(source.tree)

        # handler definitions --------------------------------------------
        for name, line in _handler_defs(source.tree):
            seen_handlers.add(name)
            if name not in kind_of_handler:
                ctx.report(
                    "proto.dead-handler", source, line,
                    f"{name}() matches no registered message kind "
                    "(register it in repro/proto/schema.py or remove it)",
                    symbol=name,
                )

        # string-literal evidence for the unsent check -------------------
        if not exempt:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Constant) and isinstance(
                    node.value, str
                ):
                    if node.value in registry:
                        literal_evidence.add(node.value)

        # send/call/multicast sites --------------------------------------
        for call in walk_calls(source.tree):
            func = call.func
            if (
                not isinstance(func, ast.Attribute)
                or func.attr not in _SEND_ATTRS
            ):
                continue
            kind_index = _kind_index(call)
            kind_expr = None
            for keyword in call.keywords:
                if keyword.arg == "kind":
                    kind_expr = keyword.value
            if kind_expr is None:
                if len(call.args) <= kind_index:
                    continue  # not a messaging call (too few args)
                kind_expr = call.args[kind_index]
            enclosing = owner.get(id(call))
            resolved = literal_strings(kind_expr, enclosing)
            if resolved is None:
                ctx.bump("proto.dynamic-sites")
                continue
            for kind in sorted(resolved):
                entry = registry.get(kind)
                if entry is None:
                    ctx.report(
                        "proto.unregistered-kind", source, call.lineno,
                        f"message kind {kind!r} is sent here but not "
                        "registered in repro/proto/schema.py",
                        symbol=kind,
                    )
                    continue
                sent_kinds.add(kind)
                shape = _literal_dict_keys(_payload_expr(call, kind_index))
                if shape is None:
                    continue
                keys, closed = shape
                allowed = entry.field_names()
                for name in sorted(keys - allowed):
                    ctx.report(
                        "proto.payload-unknown-field", source, call.lineno,
                        f"{kind!r} payload field {name!r} is not in the "
                        "registry entry",
                        symbol=f"{kind}.{name}",
                    )
                if closed and len(resolved) == 1:
                    for name in sorted(entry.required_fields() - keys):
                        ctx.report(
                            "proto.payload-missing-field", source,
                            call.lineno,
                            f"{kind!r} payload misses required field "
                            f"{name!r} (mark it optional with '?' in the "
                            "registry if senders may omit it)",
                            symbol=f"{kind}.{name}",
                        )

        # handler payload reads ------------------------------------------
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            kind = kind_of_handler.get(node.name)
            if kind is None:
                continue
            allowed = registry[kind].field_names()
            for field, line in _payload_reads(node):
                if field not in allowed:
                    ctx.report(
                        "proto.payload-unregistered-read", source, line,
                        f"handler for {kind!r} reads payload field "
                        f"{field!r} that the registry does not list",
                        symbol=f"{kind}.{field}",
                    )

    # The test suite is send evidence too: operator probes like
    # parity.flush are exercised via client.call(...) from tests only.
    tests_dir = ctx.root / "tests"
    if tests_dir.is_dir():
        blob = "\n".join(
            path.read_text()
            for path in sorted(tests_dir.rglob("*.py"))
        )
        for kind in registry:
            if f'"{kind}"' in blob or f"'{kind}'" in blob:
                literal_evidence.add(kind)

    registry_path = "src/repro/proto/schema.py"
    for kind in sorted(registry):
        if handler_name(kind) not in seen_handlers:
            ctx.report_global(
                "proto.unhandled-kind", registry_path,
                f"registered kind {kind!r} has no {handler_name(kind)}() "
                "anywhere under src/repro",
                symbol=kind,
            )
        if kind not in sent_kinds and kind not in literal_evidence:
            ctx.report_global(
                "proto.unsent-kind", registry_path,
                f"registered kind {kind!r} is never sent (no send site, "
                "no literal evidence) — retire it or wire it up",
                symbol=kind,
            )
    ctx.bump("proto.kinds-sent", len(sent_kinds))
    ctx.bump("proto.handlers-seen", len(seen_handlers))
