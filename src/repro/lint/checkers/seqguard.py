"""Seq-guard heuristic: Δ-applying handlers must consult their
per-channel sequence check.

The GF fold is its own inverse — re-applying a retransmitted Δ
silently corrupts parity — so every handler the registry marks with
``seq_guard`` identifiers (``parity.update``, ``parity.batch``, the
catch-up kinds) must reference at least one of them in its body.  A
refactor that drops the channel check now fails lint instead of
waiting for a lucky PCT seed to catch double-application dynamically.
"""

from __future__ import annotations

import ast

from repro.proto.schema import handler_name

RULES = ("seq-guard.missing",)


def _referenced_names(func: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Name):
            names.add(node.id)
    return names


def check(ctx) -> None:
    guarded = {
        handler_name(kind): (kind, entry.seq_guard)
        for kind, entry in ctx.registry.items()
        if entry.seq_guard
    }
    for source in ctx.sources:
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            target = guarded.get(node.name)
            if target is None:
                continue
            kind, guards = target
            if not set(guards) & _referenced_names(node):
                ctx.report(
                    "seq-guard.missing", source, node.lineno,
                    f"handler for Δ-applying kind {kind!r} references "
                    f"none of its sequence guards {sorted(guards)} — "
                    "a retransmitted Δ would double-apply",
                    symbol=kind,
                )
