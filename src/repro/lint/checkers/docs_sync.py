"""Docs sync: the protocol.md message-kind index is generated, never
hand-edited.

``docs/protocol.md`` carries a kind-index table between the
``protocol-kind-index`` markers; it must equal
:func:`repro.proto.schema.render_protocol_table` byte-for-byte.
Regenerate with ``python -m repro lint --protocol-table`` after any
registry change.
"""

from __future__ import annotations

from repro.proto.schema import TABLE_BEGIN, TABLE_END, render_protocol_table

RULES = ("docs.protocol-table",)

DOCS_PATH = "docs/protocol.md"


def check(ctx) -> None:
    path = ctx.root / DOCS_PATH
    if not path.exists():
        ctx.report_global(
            "docs.protocol-table", DOCS_PATH,
            "docs/protocol.md is missing",
        )
        return
    text = path.read_text()
    begin = text.find(TABLE_BEGIN)
    end = text.find(TABLE_END)
    if begin < 0 or end < 0 or end < begin:
        ctx.report_global(
            "docs.protocol-table", DOCS_PATH,
            f"generated-table markers missing ({TABLE_BEGIN} ... "
            f"{TABLE_END}); insert them and paste the output of "
            "`python -m repro lint --protocol-table`",
        )
        return
    inner = text[begin + len(TABLE_BEGIN):end].strip("\n")
    expected = render_protocol_table(
        ctx.registry.values()
    ).strip("\n")
    if inner != expected:
        ctx.report_global(
            "docs.protocol-table", DOCS_PATH,
            "the kind-index table is stale — regenerate it with "
            "`python -m repro lint --protocol-table` and paste it "
            "between the markers",
        )
