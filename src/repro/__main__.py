"""Command-line entry points: ``python -m repro <command>``.

Commands
--------
demo
    Build an LH*RS file, crash buckets, watch it heal.
availability
    Print the file-availability table P(M, k) for a given p.
codec
    Quick Reed-Solomon codec throughput measurement on this CPU.
check
    Model-check the file: run randomized workloads under fault
    injection and schedule perturbation, verify every history is
    linearizable, and shrink any violation to a minimal replayable
    counterexample.
lint
    Static analysis: protocol conformance against the message-schema
    registry, determinism hygiene, trace/metric taxonomy, Δ sequence
    guards, and docs sync.  See docs/static_analysis.md.

Every command supports ``--json``: human-readable progress is
suppressed and a single JSON object is printed on stdout instead.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from typing import Callable, Protocol


class CommandRun(Protocol):
    def __call__(
        self, args: argparse.Namespace, out: Callable[[str], None]
    ) -> "tuple[int, dict]": ...


@dataclass(frozen=True)
class Command:
    """One ``python -m repro`` subcommand.

    ``configure`` adds the command's arguments to its subparser;
    ``run`` receives the parsed namespace plus an ``out`` printer
    (a no-op under ``--json``) and returns ``(exit_status,
    json_payload)``.
    """

    name: str
    help: str
    configure: Callable[[argparse.ArgumentParser], None]
    run: CommandRun


def _configure_demo(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--records", type=int, default=2000)
    parser.add_argument("--group-size", type=int, default=4)
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument("--capacity", type=int, default=32)


def _run_demo(
    args: argparse.Namespace, out: Callable[[str], None]
) -> tuple[int, dict]:
    from repro import LHRSConfig, LHRSFile

    config = LHRSConfig(
        group_size=args.group_size,
        availability=args.k,
        bucket_capacity=args.capacity,
    )
    file = LHRSFile(config)
    out(f"Inserting {args.records} records "
        f"(m={args.group_size}, k={args.k}, b={args.capacity})...")
    for key in range(args.records):
        file.insert(key, f"value-{key}".encode())
    out(f"  {file.bucket_count} data buckets, "
        f"{file.parity_bucket_count()} parity buckets, "
        f"load {file.load_factor():.2f}, "
        f"overhead {file.storage_overhead():.2f}")

    victims = list(range(min(args.k, file.bucket_count)))
    out(f"Crashing data buckets {victims} (one group, within k)...")
    for bucket in victims:
        file.fail_data_bucket(bucket)
    probe = next(key for key in range(args.records)
                 if file.find_bucket_of(key) in victims)
    outcome = file.search(probe)
    out(f"  search({probe}) during the outage -> {outcome.value!r}")
    healed = all(file.network.is_available(f"f.d{b}") for b in victims)
    out(f"  all buckets healed: {healed}")
    problems = file.verify_parity_consistency()
    out(f"  parity consistent: {not problems}")
    availability = file.analytic_availability(0.99)
    out(f"  P(all data | p=0.99) = {availability:.6f} "
        f"(plain LH*: {0.99 ** file.bucket_count:.6f})")
    payload = {
        "records": args.records,
        "data_buckets": file.bucket_count,
        "parity_buckets": file.parity_bucket_count(),
        "load_factor": file.load_factor(),
        "storage_overhead": file.storage_overhead(),
        "degraded_search_ok": outcome.value is not None,
        "healed": healed,
        "parity_consistent": not problems,
        "availability_p99": availability,
    }
    return (0 if not problems else 1), payload


def _configure_availability(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--p", type=float, default=0.99)
    parser.add_argument("--m", type=int, default=4)
    parser.add_argument("--max-k", type=int, default=3)


def _run_availability(
    args: argparse.Namespace, out: Callable[[str], None]
) -> tuple[int, dict]:
    from repro.core import file_availability

    sizes = [4, 16, 64, 256, 1024, 4096]
    levels = list(range(args.max_k + 1))
    out(f"P(all data servable), p={args.p}, group size m={args.m}")
    out(f"{'M':>7} " + " ".join(f"{'k=' + str(k):>10}" for k in levels))
    table: dict[str, dict[str, float]] = {}
    for size in sizes:
        values = {
            f"k={k}": file_availability(size, args.m, args.p, k=k)
            for k in levels
        }
        table[str(size)] = values
        row = " ".join(f"{v:>10.6f}" for v in values.values())
        out(f"{size:>7} {row}")
    return 0, {"p": args.p, "m": args.m, "table": table}


def _configure_codec(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--m", type=int, default=4)
    parser.add_argument("--payload", type=int, default=4096)


def _run_codec(
    args: argparse.Namespace, out: Callable[[str], None]
) -> tuple[int, dict]:
    import numpy as np

    from repro import GF, RSCodec

    rng = np.random.default_rng(1)
    payloads = [
        rng.integers(0, 256, args.payload, dtype=np.uint8).tobytes()
        for _ in range(args.m)
    ]
    out(f"RS codec on this CPU: m={args.m}, stripe {args.payload} B/record")
    measurements = []
    for width in (8, 16):
        for k in (1, 2, 3):
            codec = RSCodec(m=args.m, k=k, field=GF(width))
            # Throughput measurement of this machine, not simulation
            # state: wall-clock is the measurand.
            start = time.perf_counter()  # lint: allow[determinism.wall-clock]
            rounds = 0
            while time.perf_counter() - start < 0.2:  # lint: allow[determinism.wall-clock]
                parity = codec.encode(payloads)
                rounds += 1
            elapsed = time.perf_counter() - start  # lint: allow[determinism.wall-clock]
            mb = rounds * args.m * args.payload / 1e6
            shares = {j: p for j, p in enumerate(payloads)}
            shares.update({args.m + i: p for i, p in enumerate(parity)})
            survivors = {p: v for p, v in shares.items() if p >= k}
            start = time.perf_counter()  # lint: allow[determinism.wall-clock]
            codec.recover(survivors, list(range(k)))
            decode_ms = (time.perf_counter() - start) * 1e3  # lint: allow[determinism.wall-clock]
            out(f"  GF(2^{width:>2}) k={k}: encode {mb / elapsed:7.0f} MB/s"
                f"   decode f={k}: {decode_ms:6.2f} ms")
            measurements.append({
                "field_width": width,
                "k": k,
                "encode_mb_s": mb / elapsed,
                "decode_ms": decode_ms,
            })
    return 0, {"m": args.m, "payload": args.payload,
               "measurements": measurements}


def _configure_check(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seeds", type=int, default=50,
                        help="number of workload seeds to run")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed (seeds run seed_base..+seeds-1)")
    parser.add_argument("--ops", type=int, default=120)
    parser.add_argument("--keys", type=int, default=24)
    parser.add_argument("--prefill", type=int, default=16)
    parser.add_argument("--crash-rate", type=float, default=0.05)
    parser.add_argument("--scheduler", default="pct",
                        choices=["none", "fifo", "pct"],
                        help="delivery-schedule perturbation mode")
    parser.add_argument("--mutant", default=None,
                        help="enable a validation mutant (self-test of "
                             "the checker; the run should fail)")
    parser.add_argument("--artifact", default="counterexample.json",
                        help="where to write the shrunk counterexample")
    parser.add_argument("--no-shrink", action="store_true",
                        help="dump the raw failing scenario unshrunk")
    parser.add_argument("--keep-going", action="store_true",
                        help="run all seeds even after a violation")
    parser.add_argument("--replay", metavar="FILE", default=None,
                        help="replay a saved counterexample instead")


def _run_check(
    args: argparse.Namespace, out: Callable[[str], None]
) -> tuple[int, dict]:
    from repro.check.harness import Counterexample, make_workload, run_scenario
    from repro.check.mutants import MUTANT_NAMES
    from repro.check.shrink import shrink_scenario

    if args.replay:
        example = Counterexample.load(args.replay)
        out(f"Replaying {args.replay} "
            f"(mutant={example.mutant or 'none'})...")
        result = example.replay()
        out(result.verdict.describe())
        payload = {"replay": args.replay, "reproduced": not result.ok}
        if result.ok:
            out("replay PASSED (no violation reproduced)")
            return 1, payload
        out("replay reproduced the violation")
        return 0, payload

    mutant = args.mutant
    if mutant is not None and mutant not in MUTANT_NAMES:
        out(f"unknown mutant {mutant!r}; choose from "
            f"{sorted(MUTANT_NAMES)}")
        return 2, {"error": f"unknown mutant {mutant!r}"}

    # Progress timing for the operator; the workloads themselves are
    # seed-deterministic.
    start = time.perf_counter()  # lint: allow[determinism.wall-clock]
    failures = 0
    seeds_run = 0
    for index in range(args.seeds):
        seed = args.seed_base + index
        seeds_run = index + 1
        scenario = make_workload(
            seed=seed,
            ops=args.ops,
            keys=args.keys,
            prefill=args.prefill,
            crash_rate=args.crash_rate,
            scheduler=args.scheduler,
            label=f"check-{seed}",
        )
        result = run_scenario(scenario, mutant=mutant)
        if result.ok:
            out(f"  seed {seed}: ok "
                f"({result.verdict.checked_ops} ops, "
                f"{result.verdict.states_explored} states)")
            continue
        failures += 1
        out(f"  seed {seed}: VIOLATION")
        out(result.verdict.describe())
        shrunk = scenario
        if not args.no_shrink:
            shrunk, stats = shrink_scenario(scenario, mutant=mutant)
            out(f"  shrunk {stats.initial_steps} -> {stats.final_steps} "
                f"steps in {stats.runs} runs")
            result = run_scenario(shrunk, mutant=mutant)
        example = Counterexample.from_result(result, mutant=mutant)
        example.save(args.artifact)
        out(f"  counterexample written to {args.artifact}")
        if not args.keep_going:
            break
    elapsed = time.perf_counter() - start  # lint: allow[determinism.wall-clock]
    out(f"{seeds_run} seed(s), {failures} violation(s), {elapsed:.1f}s")
    return (1 if failures else 0), {
        "seeds": seeds_run,
        "violations": failures,
        "artifact": args.artifact if failures else None,
    }


def _configure_lint(parser: argparse.ArgumentParser) -> None:
    from repro.lint import cli as lint_cli

    lint_cli.configure(parser)


def _run_lint(
    args: argparse.Namespace, out: Callable[[str], None]
) -> tuple[int, dict]:
    from repro.lint import cli as lint_cli

    return lint_cli.run(args, out)


COMMANDS: tuple[Command, ...] = (
    Command("demo", "build, crash, heal", _configure_demo, _run_demo),
    Command("availability", "P(M, k) table",
            _configure_availability, _run_availability),
    Command("codec", "codec throughput", _configure_codec, _run_codec),
    Command("check", "linearizability model checking",
            _configure_check, _run_check),
    Command("lint", "protocol/determinism static analysis",
            _configure_lint, _run_lint),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="LH*RS reproduction demos and tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for command in COMMANDS:
        cmd_parser = sub.add_parser(command.name, help=command.help)
        cmd_parser.add_argument(
            "--json", action="store_true",
            help="emit a single JSON object instead of progress text",
        )
        command.configure(cmd_parser)
        cmd_parser.set_defaults(_command=command)

    args = parser.parse_args(argv)
    command: Command = args._command
    out: Callable[[str], None] = (
        (lambda line: None) if args.json else print
    )
    status, payload = command.run(args, out)
    if args.json:
        print(json.dumps({"command": command.name, "status": status,
                          **payload}, indent=2, sort_keys=True))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
