"""Command-line demos: ``python -m repro <command>``.

Commands
--------
demo
    Build an LH*RS file, crash buckets, watch it heal.
availability
    Print the file-availability table P(M, k) for a given p.
codec
    Quick Reed-Solomon codec throughput measurement on this CPU.
check
    Model-check the file: run randomized workloads under fault
    injection and schedule perturbation, verify every history is
    linearizable, and shrink any violation to a minimal replayable
    counterexample.
"""

from __future__ import annotations

import argparse
import time


def cmd_demo(args: argparse.Namespace) -> int:
    from repro import LHRSConfig, LHRSFile

    config = LHRSConfig(
        group_size=args.group_size,
        availability=args.k,
        bucket_capacity=args.capacity,
    )
    file = LHRSFile(config)
    print(f"Inserting {args.records} records "
          f"(m={args.group_size}, k={args.k}, b={args.capacity})...")
    for key in range(args.records):
        file.insert(key, f"value-{key}".encode())
    print(f"  {file.bucket_count} data buckets, "
          f"{file.parity_bucket_count()} parity buckets, "
          f"load {file.load_factor():.2f}, "
          f"overhead {file.storage_overhead():.2f}")

    victims = list(range(min(args.k, file.bucket_count)))
    print(f"Crashing data buckets {victims} (one group, within k)...")
    for bucket in victims:
        file.fail_data_bucket(bucket)
    probe = next(key for key in range(args.records)
                 if file.find_bucket_of(key) in victims)
    outcome = file.search(probe)
    print(f"  search({probe}) during the outage -> {outcome.value!r}")
    print(f"  all buckets healed: "
          f"{all(file.network.is_available(f'f.d{b}') for b in victims)}")
    problems = file.verify_parity_consistency()
    print(f"  parity consistent: {not problems}")
    print(f"  P(all data | p=0.99) = {file.analytic_availability(0.99):.6f} "
          f"(plain LH*: {0.99 ** file.bucket_count:.6f})")
    return 0 if not problems else 1


def cmd_availability(args: argparse.Namespace) -> int:
    from repro.core import file_availability

    sizes = [4, 16, 64, 256, 1024, 4096]
    levels = list(range(args.max_k + 1))
    print(f"P(all data servable), p={args.p}, group size m={args.m}")
    print(f"{'M':>7} " + " ".join(f"{'k=' + str(k):>10}" for k in levels))
    for size in sizes:
        row = " ".join(
            f"{file_availability(size, args.m, args.p, k=k):>10.6f}"
            for k in levels
        )
        print(f"{size:>7} {row}")
    return 0


def cmd_codec(args: argparse.Namespace) -> int:
    import numpy as np

    from repro import GF, RSCodec

    rng = np.random.default_rng(1)
    payloads = [
        rng.integers(0, 256, args.payload, dtype=np.uint8).tobytes()
        for _ in range(args.m)
    ]
    print(f"RS codec on this CPU: m={args.m}, stripe {args.payload} B/record")
    for width in (8, 16):
        for k in (1, 2, 3):
            codec = RSCodec(m=args.m, k=k, field=GF(width))
            start = time.perf_counter()
            rounds = 0
            while time.perf_counter() - start < 0.2:
                parity = codec.encode(payloads)
                rounds += 1
            elapsed = time.perf_counter() - start
            mb = rounds * args.m * args.payload / 1e6
            shares = {j: p for j, p in enumerate(payloads)}
            shares.update({args.m + i: p for i, p in enumerate(parity)})
            survivors = {p: v for p, v in shares.items() if p >= k}
            start = time.perf_counter()
            codec.recover(survivors, list(range(k)))
            decode_ms = (time.perf_counter() - start) * 1e3
            print(f"  GF(2^{width:>2}) k={k}: encode {mb / elapsed:7.0f} MB/s"
                  f"   decode f={k}: {decode_ms:6.2f} ms")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.check.harness import Counterexample, make_workload, run_scenario
    from repro.check.mutants import MUTANT_NAMES
    from repro.check.shrink import shrink_scenario

    if args.replay:
        example = Counterexample.load(args.replay)
        print(f"Replaying {args.replay} "
              f"(mutant={example.mutant or 'none'})...")
        result = example.replay()
        print(result.verdict.describe())
        if result.ok:
            print("replay PASSED (no violation reproduced)")
            return 1
        print("replay reproduced the violation")
        return 0

    mutant = args.mutant
    if mutant is not None and mutant not in MUTANT_NAMES:
        print(f"unknown mutant {mutant!r}; choose from "
              f"{sorted(MUTANT_NAMES)}")
        return 2

    start = time.perf_counter()
    failures = 0
    for index in range(args.seeds):
        seed = args.seed_base + index
        scenario = make_workload(
            seed=seed,
            ops=args.ops,
            keys=args.keys,
            prefill=args.prefill,
            crash_rate=args.crash_rate,
            scheduler=args.scheduler,
            label=f"check-{seed}",
        )
        result = run_scenario(scenario, mutant=mutant)
        if result.ok:
            print(f"  seed {seed}: ok "
                  f"({result.verdict.checked_ops} ops, "
                  f"{result.verdict.states_explored} states)")
            continue
        failures += 1
        print(f"  seed {seed}: VIOLATION")
        print(result.verdict.describe())
        shrunk = scenario
        if not args.no_shrink:
            shrunk, stats = shrink_scenario(scenario, mutant=mutant)
            print(f"  shrunk {stats.initial_steps} -> {stats.final_steps} "
                  f"steps in {stats.runs} runs")
            result = run_scenario(shrunk, mutant=mutant)
        example = Counterexample.from_result(result, mutant=mutant)
        example.save(args.artifact)
        print(f"  counterexample written to {args.artifact}")
        if not args.keep_going:
            break
    elapsed = time.perf_counter() - start
    print(f"{args.seeds if args.keep_going else index + 1} seed(s), "
          f"{failures} violation(s), {elapsed:.1f}s")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="LH*RS reproduction demos",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="build, crash, heal")
    demo.add_argument("--records", type=int, default=2000)
    demo.add_argument("--group-size", type=int, default=4)
    demo.add_argument("--k", type=int, default=2)
    demo.add_argument("--capacity", type=int, default=32)
    demo.set_defaults(func=cmd_demo)

    avail = sub.add_parser("availability", help="P(M, k) table")
    avail.add_argument("--p", type=float, default=0.99)
    avail.add_argument("--m", type=int, default=4)
    avail.add_argument("--max-k", type=int, default=3)
    avail.set_defaults(func=cmd_availability)

    codec = sub.add_parser("codec", help="codec throughput")
    codec.add_argument("--m", type=int, default=4)
    codec.add_argument("--payload", type=int, default=4096)
    codec.set_defaults(func=cmd_codec)

    check = sub.add_parser(
        "check", help="linearizability model checking"
    )
    check.add_argument("--seeds", type=int, default=50,
                       help="number of workload seeds to run")
    check.add_argument("--seed-base", type=int, default=0,
                       help="first seed (seeds run seed_base..+seeds-1)")
    check.add_argument("--ops", type=int, default=120)
    check.add_argument("--keys", type=int, default=24)
    check.add_argument("--prefill", type=int, default=16)
    check.add_argument("--crash-rate", type=float, default=0.05)
    check.add_argument("--scheduler", default="pct",
                       choices=["none", "fifo", "pct"],
                       help="delivery-schedule perturbation mode")
    check.add_argument("--mutant", default=None,
                       help="enable a validation mutant (self-test of "
                            "the checker; the run should fail)")
    check.add_argument("--artifact", default="counterexample.json",
                       help="where to write the shrunk counterexample")
    check.add_argument("--no-shrink", action="store_true",
                       help="dump the raw failing scenario unshrunk")
    check.add_argument("--keep-going", action="store_true",
                       help="run all seeds even after a violation")
    check.add_argument("--replay", metavar="FILE", default=None,
                       help="replay a saved counterexample instead")
    check.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
