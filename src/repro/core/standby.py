"""Standby coordinator replicas: lease monitoring and takeover.

The active coordinator replicates every journal record synchronously to
its standbys (``coord.journal.append``) and renews their lease with
periodic heartbeats.  A standby whose lease expires first *confirms*
the suspicion with a direct ping (check-then-fence: a slow heartbeat is
not a death certificate), then promotes itself:

1. catch up the journal from the surviving peers,
2. depose the dead primary (unregister its node, detach its heartbeat),
3. build a fresh :class:`~repro.core.coordinator.RSCoordinator` under
   the *same* node id — clients keep addressing ``<file>.coord`` and
   only pay a whois round when they notice the blackout,
4. replay the journal into it and let ``adopt_journal_state`` fill any
   gaps from parity-header checkpoints / survivor probes and roll open
   restructuring intents forward,
5. bump the term, journal the takeover, resume heartbeating.

Clients that hit the dead primary before any standby noticed use the
``coord.whois`` pull path: the answering standby either vouches for the
primary, reports the remaining lease (the client backs off exactly that
long), or — lease already expired — performs the takeover inline.

Everything rides the ordinary simulated network: heartbeats, journal
replication and whois are counted messages, standbys are registered
nodes the :class:`~repro.sim.failure.FailureInjector` can kill too.
"""

from __future__ import annotations

from repro.core.config import LHRSConfig
from repro.core.coordinator import RSCoordinator
from repro.core.journal import CoordinatorJournal
from repro.sdds.coordinator import SplitPolicy
from repro.sim.messages import Message
from repro.sim.network import DeliveryFault, NodeUnavailable, UnknownNode
from repro.sim.node import Node


class StandbyCoordinator(Node):
    """A passive coordinator replica watching the primary's lease."""

    def __init__(
        self,
        node_id: str,
        file_id: str,
        config: LHRSConfig,
        policy: SplitPolicy | None = None,
        primary_id: str | None = None,
        peer_ids: list[str] | None = None,
    ):
        super().__init__(node_id)
        self.file_id = file_id
        self.config = config
        self.policy = policy
        self.primary_id = primary_id or f"{file_id}.coord"
        #: every standby id of this file (including self)
        self.peer_ids = list(peer_ids or [node_id])
        self.journal = CoordinatorJournal()
        self.last_beat = 0.0
        self.term = 0
        #: how many takeovers this standby performed
        self.takeovers = 0
        self._busy = False

    # ------------------------------------------------------------------
    # replication plane
    # ------------------------------------------------------------------
    def handle_coord_journal_append(self, message: Message) -> dict:
        """Synchronous journal replication from the primary."""
        self.journal.ingest(message.payload["records"])
        self.term = max(self.term, int(message.payload.get("term", 0)))
        self.last_beat = self._net().now
        if self.journal.gaps():
            self._catch_up(message.sender)
        return {"lsn": self.journal.last_lsn}

    def handle_coord_heartbeat(self, message: Message) -> None:
        """Lease renewal; a journal position ahead of ours triggers a
        pull of the missing suffix (we were down for some appends)."""
        self.last_beat = self._net().now
        self.term = max(self.term, int(message.payload.get("term", 0)))
        if int(message.payload.get("lsn", 0)) > self.journal.last_lsn:
            self._catch_up(message.sender)
        elif self.journal.gaps():
            self._catch_up(message.sender)

    def handle_coord_journal_fetch(self, message: Message) -> dict:
        """Serve our journal suffix to a promoting (or lagging) peer."""
        after = int(message.payload.get("after", 0))
        return {"records": self.journal.since(after), "term": self.term}

    def _catch_up(self, source: str) -> None:
        try:
            reply = self.call(
                source,
                "coord.journal.fetch",
                {"after": self.journal.contiguous_lsn},
            )
        except (NodeUnavailable, UnknownNode, DeliveryFault):
            return
        self.journal.ingest(reply["records"])
        self.term = max(self.term, int(reply.get("term", 0)))

    # ------------------------------------------------------------------
    # client pull path
    # ------------------------------------------------------------------
    def handle_coord_whois(self, message: Message) -> dict:
        """Who is the coordinator?  Vouch, stall, or take over inline."""
        network = self._net()
        if network.tracer is not None:
            network.tracer.emit(
                "coord.whois", node=self.node_id, client=message.sender
            )
        if network.is_available(self.primary_id):
            return {"primary": self.primary_id, "ready": True}
        remaining = self.config.lease_timeout - (network.now - self.last_beat)
        if remaining > 0:
            return {
                "primary": self.primary_id,
                "ready": False,
                "retry_after": remaining,
            }
        self.take_over(reason="whois")
        return {"primary": self.primary_id, "ready": True}

    # ------------------------------------------------------------------
    # lease monitor
    # ------------------------------------------------------------------
    def on_tick(self, now: float) -> None:
        """Clock listener: expire the lease and confirm before fencing.

        Re-entrancy guard: our own calls tick the clock, which runs the
        listeners again before the call even delivers.
        """
        network = self.network
        if network is None or self._busy:
            return
        if network.nodes.get(self.node_id) is not self:
            return
        if self.node_id in network.failed:
            return
        if now - self.last_beat < self.config.lease_timeout:
            return
        self._busy = True
        try:
            if network.is_available(self.primary_id):
                try:
                    reply = self.call(self.primary_id, "coord.ping")
                except DeliveryFault:
                    return  # inconclusive — stay suspicious, retry next tick
                except (NodeUnavailable, UnknownNode):
                    pass  # died under us: fall through to takeover
                else:
                    self.last_beat = network.now
                    self.term = max(self.term, int(reply.get("term", 0)))
                    if int(reply.get("lsn", 0)) > self.journal.last_lsn:
                        self._catch_up(self.primary_id)
                    return
            if network.tracer is not None:
                network.tracer.emit(
                    "coord.lease.expired",
                    node=self.node_id,
                    primary=self.primary_id,
                    idle=now - self.last_beat,
                )
            self.take_over(reason="lease")
        finally:
            self._busy = False

    # ------------------------------------------------------------------
    # promotion
    # ------------------------------------------------------------------
    def take_over(self, reason: str = "lease") -> RSCoordinator | None:
        """Assume the coordinator identity (returns the new primary).

        Returns None when another standby won the race (the primary id
        answers again by the time we look).
        """
        network = self._net()
        if network.is_available(self.primary_id):
            return None  # lost the race — a peer already promoted
        was_busy = self._busy
        self._busy = True
        try:
            tracer = network.tracer
            if tracer is not None:
                tracer.emit(
                    "coord.takeover.start",
                    node=self.node_id,
                    reason=reason,
                    term=self.term,
                )
            # Final catch-up: a peer may hold records we missed.
            for peer_id in self.peer_ids:
                if peer_id == self.node_id:
                    continue
                try:
                    reply = self.call(
                        peer_id,
                        "coord.journal.fetch",
                        {"after": self.journal.contiguous_lsn},
                    )
                except (NodeUnavailable, UnknownNode, DeliveryFault):
                    continue
                self.journal.ingest(reply["records"])
                self.term = max(self.term, int(reply.get("term", 0)))
            # The catch-up calls tick the clock: a peer's lease monitor
            # may have promoted meanwhile.  Its replication already put
            # the takeover in our journal — stand down.
            if network.is_available(self.primary_id):
                return None
            # Fence the deposed primary: its node and heartbeat go away
            # before the replacement registers under the same id.
            old = network.nodes.get(self.primary_id)
            if old is not None:
                network.unregister(self.primary_id)
                heartbeat = getattr(old, "_heartbeat_tick", None)
                if heartbeat is not None:
                    network.remove_clock_listener(heartbeat)
            replayed = self.journal.replay()
            self.term = max(self.term, replayed.term) + 1
            coordinator = RSCoordinator(
                node_id=self.primary_id,
                file_id=self.file_id,
                policy=self.policy,
                config=self.config,
            )
            coordinator.journal = self.journal.clone()
            coordinator.term = self.term
            coordinator.standby_ids = list(self.peer_ids)
            network.register(coordinator)
            network.add_clock_listener(coordinator._heartbeat_tick)
            coordinator.adopt_journal_state(replayed)
            self.takeovers += 1
            self.last_beat = network.now
            if tracer is not None:
                tracer.emit(
                    "coord.takeover.end",
                    node=self.node_id,
                    term=self.term,
                    lsn=coordinator.journal.last_lsn,
                    resumed=len(replayed.open_intents),
                )
            return coordinator
        finally:
            self._busy = was_busy
