"""The LH*RS coordinator.

Extends the LH* coordinator with the high-availability duties:

* every new bucket group gets k parity buckets at birth (k from the
  availability policy at that moment);
* the scalable-availability policy can raise k as the file grows — new
  groups are born at the higher level, and (eagerly) existing groups are
  retrofitted: fresh parity buckets are encoded from the group's data
  and the group's data servers learn their new parity targets;
* unavailability reports converge here: searches are served through
  record recovery (degraded reads) and failed buckets are rebuilt onto
  spares under their logical addresses.
"""

from __future__ import annotations

from repro.core.config import LHRSConfig
from repro.core.group import data_node, group_buckets, group_count, group_of, parity_node
from repro.core.data_bucket import RSDataServer
from repro.core.parity_bucket import ParityServer
from repro.core.recovery import RecoveryError, RecoveryManager, parse_node_id
from repro.rs.generator import parity_matrix
from repro.sdds.coordinator import Coordinator, SplitPolicy
from repro.sim.messages import Message
from repro.sim.network import NodeUnavailable


class RSCoordinator(Coordinator):
    """Coordinator of one LH*RS file."""

    def __init__(
        self,
        node_id: str,
        file_id: str,
        capacity: int | None = None,
        n0: int | None = None,
        policy: SplitPolicy | None = None,
        config: LHRSConfig | None = None,
    ):
        self.config = config or LHRSConfig()
        if capacity is not None and capacity != self.config.bucket_capacity:
            raise ValueError("capacity is fixed by LHRSConfig.bucket_capacity")
        if n0 is not None and n0 != self.config.group_size:
            raise ValueError("n0 is fixed by LHRSConfig.group_size (one group)")
        super().__init__(
            node_id,
            file_id,
            capacity=self.config.bucket_capacity,
            n0=self.config.group_size,
            policy=policy,
        )
        self.field = self.config.make_field()
        #: availability level per bucket group
        self._group_levels: dict[int, int] = {}
        #: hot spares left in the pool (None = unbounded)
        self.spares_remaining = self.config.spare_servers
        self.recovery = RecoveryManager(self)
        #: per-probe-round health entries (the self-healing loop's log;
        #: bench_e16_lifetime consumes this)
        self.health_log: list[dict] = []
        #: first probe round that saw each currently-down node (feeds
        #: the probe.mttr histogram when the node comes back)
        self._down_since: dict[str, float] = {}

    def take_spare(self) -> None:
        """Consume one hot spare for a recovery; raises when exhausted."""
        if self.spares_remaining is None:
            return
        if self.spares_remaining <= 0:
            raise RecoveryError(
                "hot-spare pool exhausted: provision more servers before "
                "further recoveries"
            )
        self.spares_remaining -= 1

    # ------------------------------------------------------------------
    # group/parity bookkeeping
    # ------------------------------------------------------------------
    def group_level(self, group: int) -> int:
        """Current availability level k of a bucket group."""
        try:
            return self._group_levels[group]
        except KeyError:
            raise KeyError(f"bucket group {group} does not exist") from None

    @property
    def group_levels(self) -> dict[int, int]:
        """Read-only view of every group's availability level."""
        return dict(self._group_levels)

    def parity_row(self, index: int) -> list[int]:
        """Generator row for parity bucket ``index`` (nested rows).

        With the normalized Cauchy construction, row ``index`` of the
        (m, k) parity matrix is the same for every k > index, so the row
        can be issued before knowing how high k will ever scale.
        """
        matrix = parity_matrix(
            self.field, self.config.group_size, index + 1, self.config.generator
        )
        return matrix.row(index)

    def make_parity_server(self, group: int, index: int) -> ParityServer:
        return ParityServer(
            node_id=parity_node(self.file_id, group, index),
            file_id=self.file_id,
            group=group,
            index=index,
            row=self.parity_row(index),
            field=self.field,
            stripe_store=self.config.parity_stripe_store,
        )

    def make_server(self, number: int, level: int) -> RSDataServer:
        group = group_of(number, self.config.group_size)
        targets = [
            parity_node(self.file_id, group, i)
            for i in range(self._group_levels.get(group, 0))
        ]
        return RSDataServer(
            node_id=data_node(self.file_id, number),
            file_id=self.file_id,
            number=number,
            level=level,
            capacity=self.capacity,
            n0=self.state.n0,
            group_size=self.config.group_size,
            parity_targets=targets,
            compact_ranks=self.config.compact_ranks,
            parity_batch_size=self.config.parity_batch_size,
            field_width=self.config.field_width,
            retry_policy=self.config.retry_policy,
            parity_ack=self.config.parity_ack,
        )

    # ------------------------------------------------------------------
    # growth hooks
    # ------------------------------------------------------------------
    def bootstrap(self) -> None:
        """Create group 0's parity buckets, then the initial data buckets."""
        self._create_group(0)
        super().bootstrap()

    def _create_group(self, group: int) -> None:
        level = self.config.effective_policy.level_for(
            group_count(self.state.bucket_count, self.config.group_size) or 1
        )
        self._group_levels[group] = level
        for index in range(level):
            self._net().register(self.make_parity_server(group, index))

    def on_new_bucket(self, number: int, level: int) -> None:
        if number % self.config.group_size == 0:
            self._create_group(group_of(number, self.config.group_size))
        self._maybe_scale_availability()

    def merge_once(self) -> tuple[int, int]:
        """Shrink by one bucket, maintaining parity on both groups.

        The dissolving bucket's records leave its record groups (batched
        Δ-deletes) and re-enter the absorber's (fresh ranks, batched
        Δ-inserts, via the ordinary bulk path).  When the dissolving
        bucket was its group's only member, the whole group — parity
        buckets included — retires with it.
        """
        if self.state.bucket_count <= self.state.n0:
            raise ValueError("cannot shrink below the initial buckets")
        m = self.config.group_size
        target = self.state.bucket_count - 1
        retiring = target % m == 0  # group's first and only bucket
        # Both participants must be up before the state retreats (see
        # _ensure_available on why recovery cannot happen mid-command).
        # The absorber is the bucket whose split created the last one —
        # retreat_merge's source, computed here without mutating state.
        if self.state.n:
            peek_source = self.state.n - 1
        else:
            peek_source = (1 << (self.state.i - 1)) * self.state.n0 - 1
        self._ensure_available(
            data_node(self.file_id, target),
            data_node(self.file_id, peek_source),
        )
        tracer = self._net().tracer
        if tracer is not None:
            tracer.emit("merge.start", target=target, retiring=retiring)
        with self._restructure_lock():
            before = len(self._pending_overflows)
            source, _, level = self.state.retreat_merge()
            self.send(data_node(self.file_id, source), "level.set",
                      {"level": level})
            self._structural_call(
                data_node(self.file_id, target), "merge",
                {"into": source, "retiring": retiring},
            )
            self._net().unregister(data_node(self.file_id, target))
            self.on_bucket_removed(target)
            if not retiring:
                # The group lives on: close the dissolved bucket's
                # Δ-channels so a future split re-creating it (fresh
                # sequence counter) is not mistaken for retransmissions.
                group = group_of(target, m)
                for index in range(self.group_level(group)):
                    self.send(
                        parity_node(self.file_id, group, index),
                        "parity.reset",
                        {"positions": [target % m]},
                    )
            self._sizes.pop(target, None)
            # Drop overflow reports raised by the merge's own movement
            # (see the base class note on merge/split ping-pong).
            del self._pending_overflows[before:]
        if tracer is not None:
            tracer.emit("merge.end", source=source, target=target)
        return source, target

    def on_bucket_removed(self, number: int) -> None:
        if number % self.config.group_size == 0:
            group = group_of(number, self.config.group_size)
            level = self._group_levels.pop(group)
            for index in range(level):
                self._net().unregister(parity_node(self.file_id, group, index))

    def _maybe_scale_availability(self) -> None:
        """Retrofit existing groups when the policy raised the level."""
        if not self.config.upgrade_existing_groups:
            return
        groups = group_count(self.state.bucket_count + 1, self.config.group_size)
        target = self.config.effective_policy.level_for(groups)
        for group, current in sorted(self._group_levels.items()):
            if current < target:
                self.raise_group_level(group, target)

    def raise_group_level(self, group: int, new_level: int) -> None:
        """Add parity buckets to an existing group and encode them.

        The new buckets' contents are computed by the recovery machinery
        (a "loss" of the new indices against zero prior content is
        exactly an encode), then the group's data servers are told their
        new parity targets.
        """
        current = self.group_level(group)
        if new_level <= current:
            return
        tracer = self._net().tracer
        if tracer is not None:
            tracer.emit(
                "availability.raise",
                group=group,
                level=current,
                new_level=new_level,
            )
        if self.config.generator != "cauchy":
            raise RecoveryError(
                "raising availability needs nested generator rows; "
                "only the cauchy construction provides them"
            )
        # Read the group's data *before* committing anything: a dead
        # member surfaces here and leaves the group untouched (recover
        # it, then retry the raise).
        ops, expected_seqs = self._collect_group_ops(group)
        for index in range(current, new_level):
            self._net().register(self.make_parity_server(group, index))
        self._group_levels[group] = new_level
        for index in range(current, new_level):
            self.send(
                parity_node(self.file_id, group, index),
                "parity.batch",
                {"ops": ops, "expected_seqs": expected_seqs},
            )
        targets = [
            parity_node(self.file_id, group, i) for i in range(new_level)
        ]
        for bucket in group_buckets(
            group, self.config.group_size, self.state.bucket_count
        ):
            self.send(
                data_node(self.file_id, bucket),
                "config.parity",
                {"targets": targets},
            )

    def _collect_group_ops(self, group: int) -> tuple[list[dict], dict[int, int]]:
        """Dump a group's data as (unsequenced) insert Δ-ops plus the
        channel expectations a fresh parity bucket should start from.

        The ops feed new parity buckets in one encode batch; the
        expectations make any in-flight or retransmitted Δ from before
        the dump a detectable duplicate at the new bucket.
        """
        m = self.config.group_size
        buckets = group_buckets(group, m, self.state.bucket_count)
        ops_by_rank: dict[int, list] = {}
        expected_seqs: dict[int, int] = {}
        for bucket in buckets:
            dump = self.call(data_node(self.file_id, bucket), "bucket.dump")
            pos = bucket % m
            expected_seqs[pos] = dump.get("parity_seq", 0) + 1
            for key, rank, payload in dump["records"]:
                ops_by_rank.setdefault(rank, []).append(
                    {
                        "op": "insert",
                        "key": key,
                        "rank": rank,
                        "pos": pos,
                        "delta": payload,
                        "length": len(payload),
                    }
                )
        ops = [op for rank in sorted(ops_by_rank) for op in ops_by_rank[rank]]
        return ops, expected_seqs

    # ------------------------------------------------------------------
    # unavailability handling
    # ------------------------------------------------------------------
    def handle_report_unavailable(self, message: Message) -> None:
        """A client or server hit an unavailable bucket.

        Key searches are answered immediately through record recovery
        (degraded mode) when enabled; the failed bucket (and any other
        casualties in its group) is then rebuilt onto a spare so later
        operations proceed normally.
        """
        payload = message.payload
        kind, op = payload.get("kind"), payload.get("op")
        tracer = self._net().tracer
        if tracer is not None:
            tracer.emit(
                "report.unavailable", node=payload.get("node"), kind=kind
            )

        if kind == "search" and op and self.config.degraded_reads:
            found, value = self.recovery.recover_record(op["key"])
            self.send(
                op["client"],
                "search.result",
                {
                    "request": op["request"],
                    "key": op["key"],
                    "found": found,
                    "value": value,
                },
            )
            op = None  # already served

        node_id = payload["node"]
        if self.config.auto_recover:
            if not self._net().is_available(node_id):
                self.recovery.recover_nodes([node_id])
        elif op is not None or kind is None:
            # Mutations and parity-update failures cannot proceed in
            # degraded mode — losing them silently is never acceptable.
            raise RecoveryError(
                f"{node_id} is unavailable and auto_recover is disabled"
            )
        if op is not None:
            # Complete the mutation against the recovered bucket.
            self.deliver_routed(kind, dict(op, hops=op.get("hops", 0) + 1),
                                self.state.address(op["key"]))

    def deliver_routed(self, kind: str, op: dict, target: int) -> None:
        try:
            self.send(data_node(self.file_id, target), kind, op)
        except NodeUnavailable:
            if not self.config.auto_recover:
                raise
            self.recovery.recover_nodes([data_node(self.file_id, target)])
            self.send(data_node(self.file_id, target), kind, op)

    def _ensure_available(self, *node_ids: str) -> None:
        """Recover any of the given nodes that are currently down.

        Called *before* a structural change (split/merge) touches the
        file state: recovering then is safe because the rebuilt bucket's
        level still matches the directory.  Recovering after the state
        advanced would rebuild at the post-change level while the
        content is still pre-change — which is why the restructuring
        paths never try to recover mid-command.  (Node crashes only
        happen between operation chains, so a participant alive here is
        alive for the whole command.)
        """
        down = [n for n in node_ids if not self._net().is_available(n)]
        if down and self.config.auto_recover:
            self.recovery.recover_nodes(down)

    def split_once(self) -> tuple[int, int]:
        source, _, _ = self.state.next_split()
        self._ensure_available(data_node(self.file_id, source))
        return super().split_once()

    def handle_report_stale(self, message: Message) -> None:
        """A parity bucket detected a gap in its Δ stream (or a sender
        exhausted its retry budget against it): its content no longer
        reflects the group's data.  Rebuild it from the data, which is
        always current (mutations precede their Δ sends).
        """
        node_id = message.payload["node"]
        tracer = self._net().tracer
        if tracer is not None:
            tracer.emit("report.stale", node=node_id)
        if not self.config.auto_recover:
            raise RecoveryError(
                f"{node_id} reported stale parity and auto_recover is disabled"
            )
        self.recovery.recover_nodes([node_id])

    def probe(self, best_effort: bool = False) -> dict:
        """Actively sweep every server for unavailability and recover.

        The papers let the coordinator detect failures itself (e.g.
        while requesting a split); this models a full probe round:
        multicast a status ping to every data and parity bucket, recover
        whatever did not answer.  ``best_effort`` (the self-healing
        loop) records per-group recovery failures instead of raising.
        Returns the probe summary.
        """
        targets = [
            data_node(self.file_id, b) for b in self.state.buckets()
        ] + [
            parity_node(self.file_id, g, i)
            for g, level in sorted(self._group_levels.items())
            for i in range(level)
        ]
        network = self._net()
        _, unavailable = network.multicast(self.node_id, targets, "status")
        summary = {"probed": len(targets), "unavailable": list(unavailable)}
        if network.tracer is not None:
            network.tracer.emit(
                "probe.round",
                probed=len(targets),
                unavailable=len(unavailable),
            )
        for node in unavailable:
            self._down_since.setdefault(node, network.now)
        if unavailable and self.config.auto_recover:
            summary["recovered"] = self.recovery.recover_nodes(
                unavailable, best_effort=best_effort
            )
        # Repair-time accounting: a node first seen down at t_down that
        # answers again now contributes (now - t_down) to probe.mttr.
        if self._down_since:
            metrics = network.metrics
            for node in list(self._down_since):
                if network.is_available(node):
                    downtime = network.now - self._down_since.pop(node)
                    if metrics is not None:
                        from repro.obs.metrics import MTTR_BUCKETS

                        metrics.histogram(
                            "probe.mttr",
                            MTTR_BUCKETS,
                            "probe-cycle repair time",
                        ).observe(downtime)
        return summary

    def run_probe_cycle(
        self, rounds: int = 1, advance_per_round: float = 1.0
    ) -> list[dict]:
        """The autonomous self-healing loop: probe, recover, log, repeat.

        Each round advances the simulated clock (letting scheduled
        crash/restore windows fire and delayed messages mature), sweeps
        every server, recovers what it can — best-effort, so a group
        beyond help or an exhausted spare pool is recorded rather than
        fatal — and appends a health entry to :attr:`health_log`.
        Returns this cycle's entries.
        """
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        entries: list[dict] = []
        for _ in range(rounds):
            if advance_per_round:
                self._net().advance(advance_per_round)
            summary = self.probe(best_effort=True)
            recovered = summary.get("recovered", {})
            entry = {
                "time": self._net().now,
                "probed": summary["probed"],
                "unavailable": list(summary["unavailable"]),
                "recovered_groups": recovered.get("groups", 0),
                "recovered_data_buckets": recovered.get("data_buckets", 0),
                "recovered_parity_buckets": recovered.get("parity_buckets", 0),
                "records_rebuilt": recovered.get("records", 0),
                "errors": recovered.get("errors", []),
                "spares_remaining": self.spares_remaining,
            }
            self.health_log.append(entry)
            entries.append(entry)
        return entries

    def handle_rejoin(self, message: Message) -> dict:
        """Self-detected recovery (§2.5.4-style): a restarted server asks
        whether it still carries its bucket or was replaced meanwhile."""
        node_id = message.payload["node"]
        parsed = parse_node_id(self.file_id, node_id)
        if parsed is None:
            return {"role": "unknown"}
        current = self._net().nodes.get(node_id)
        sender = self._net().nodes.get(message.sender)
        if current is not None and current is sender:
            return {"role": "current"}
        return {"role": "spare", "replacement": node_id}
