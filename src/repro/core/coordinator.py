"""The LH*RS coordinator.

Extends the LH* coordinator with the high-availability duties:

* every new bucket group gets k parity buckets at birth (k from the
  availability policy at that moment);
* the scalable-availability policy can raise k as the file grows — new
  groups are born at the higher level, and (eagerly) existing groups are
  retrofitted: fresh parity buckets are encoded from the group's data
  and the group's data servers learn their new parity targets;
* unavailability reports converge here: searches are served through
  record recovery (degraded reads) and failed buckets are rebuilt onto
  spares under their logical addresses;
* the coordinator itself is expendable: every state transition is
  journaled (``repro.core.journal``) before it takes effect, replicated
  to standby replicas and checkpointed into parity-bucket headers, so a
  standby can replay the journal, adopt the file and roll interrupted
  restructurings forward (see ``repro.core.standby``).
"""

from __future__ import annotations

from collections import deque

from repro.core.config import LHRSConfig
from repro.core.group import data_node, group_buckets, group_count, group_of, parity_node
from repro.core.data_bucket import RSDataServer
from repro.core.journal import RETIRED, CoordinatorJournal, JournalRecord, JournalState
from repro.core.parity_bucket import ParityServer
from repro.core.recovery import (
    RecoveryError,
    RecoveryManager,
    parse_node_id,
    reconstruct_state,
)
from repro.obs.metrics import MTTR_BUCKETS
from repro.rs.generator import parity_matrix
from repro.sdds.coordinator import Coordinator, SplitPolicy
from repro.sim.messages import Message
from repro.sim.network import DeliveryFault, NodeUnavailable, UnknownNode


class CoordinatorCrashed(DeliveryFault):
    """The coordinator died mid-command (an armed crash point fired).

    Subclasses :class:`DeliveryFault` so the client retry ladders treat
    a coordinator lost mid-chain exactly like any other transient
    delivery failure: back off, retry, and — once a standby has taken
    over — replay the (ack-tokened) request against the new primary.
    """

    def __init__(self, node_id: str, point: str):
        super().__init__(node_id, "request")
        self.point = point


class BoundedHealthLog:
    """Drop-oldest ring buffer over probe-round health entries.

    The self-healing loop appends one entry per round forever; a
    long-lived coordinator must not grow without bound on its own
    telemetry.  Reads behave like a list (len, iteration, indexing and
    slicing — ``bench_e16_lifetime`` consumes it that way); evictions
    are counted in :attr:`dropped` and surfaced as a gauge.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("health log capacity must be >= 1")
        self.capacity = capacity
        self._entries: deque[dict] = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, entry: dict) -> None:
        if len(self._entries) == self.capacity:
            self.dropped += 1
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._entries)[index]
        return self._entries[index]


class RSCoordinator(Coordinator):
    """Coordinator of one LH*RS file."""

    def __init__(
        self,
        node_id: str,
        file_id: str,
        capacity: int | None = None,
        n0: int | None = None,
        policy: SplitPolicy | None = None,
        config: LHRSConfig | None = None,
    ):
        self.config = config or LHRSConfig()
        if capacity is not None and capacity != self.config.bucket_capacity:
            raise ValueError("capacity is fixed by LHRSConfig.bucket_capacity")
        if n0 is not None and n0 != self.config.group_size:
            raise ValueError("n0 is fixed by LHRSConfig.group_size (one group)")
        super().__init__(
            node_id,
            file_id,
            capacity=self.config.bucket_capacity,
            n0=self.config.group_size,
            policy=policy,
        )
        self.field = self.config.make_field()
        #: availability level per bucket group
        self._group_levels: dict[int, int] = {}
        #: hot spares left in the pool (None = unbounded)
        self.spares_remaining = self.config.spare_servers
        self.recovery = RecoveryManager(self)
        #: per-probe-round health entries (the self-healing loop's log;
        #: bench_e16_lifetime consumes this), bounded to the configured
        #: capacity with drop-oldest eviction
        self.health_log = BoundedHealthLog(self.config.health_log_capacity)
        #: first probe round that saw each currently-down node (feeds
        #: the probe.mttr histogram when the node comes back)
        self._down_since: dict[str, float] = {}
        #: write-ahead journal of state transitions (HA substrate)
        self.journal = CoordinatorJournal()
        #: monotonic takeover epoch (bumped by each standby promotion)
        self.term = 0
        #: standby replica node ids this primary replicates to
        self.standby_ids: list[str] = []
        #: armed crash points (fault injection inside a command chain)
        self.crash_points: set[str] = set()
        #: crash points that actually fired on this object
        self.crash_log: list[str] = []
        #: intents rolled forward (or aborted) by adopt_journal_state
        self.takeover_resumes: list[dict] = []
        #: per-bucket incarnation fence (durability mode): bumped every
        #: time a spare is installed under a bucket's logical address, so
        #: a restarted server whose disk predates the rebuild can never
        #: catch up into a file that already replaced it
        self._bucket_epochs: dict[str, int] = {}
        self._appends_since_checkpoint = 0
        self._last_beat_sent = float("-inf")
        self._hb_busy = False

    def take_spare(self) -> None:
        """Consume one hot spare for a recovery; raises when exhausted."""
        if self.spares_remaining is None:
            return
        if self.spares_remaining <= 0:
            raise RecoveryError(
                "hot-spare pool exhausted: provision more servers before "
                "further recoveries"
            )
        self.spares_remaining -= 1
        self._journal("spares", remaining=self.spares_remaining)

    # ------------------------------------------------------------------
    # journal, replication, checkpoints
    # ------------------------------------------------------------------
    def _journal(self, type: str, **payload) -> JournalRecord:
        """Append one record; replicate and checkpoint when HA is on.

        Journaling is always local (it costs no messages); replication
        to standbys and parity-header checkpoints only happen once
        standbys are attached, so a replica-less file pays nothing.
        """
        record = self.journal.append(type, **payload)
        network = self.network
        if network is None:
            return record
        if network.tracer is not None:
            network.tracer.emit("coord.journal", record=type, lsn=record.lsn)
        if self.standby_ids:
            wire = [record.to_wire()]
            for standby_id in self.standby_ids:
                try:
                    self.call(
                        standby_id,
                        "coord.journal.append",
                        {"records": wire, "term": self.term},
                    )
                except (NodeUnavailable, UnknownNode):
                    # A down standby catches up from the journal.fetch
                    # path once it hears a heartbeat again.
                    continue
            self._appends_since_checkpoint += 1
            if (
                self._appends_since_checkpoint
                >= self.config.journal_checkpoint_interval
            ):
                self.checkpoint_to_parity()
        return record

    def checkpoint_to_parity(self) -> dict:
        """Push a state snapshot into every parity bucket's header.

        The checkpoint is the journal's belt-and-braces: a takeover that
        finds the journal empty (or truncated) asks the parity buckets
        for the newest checkpoint before falling back to probing the
        data buckets themselves.
        """
        snapshot = {
            "lsn": self.journal.last_lsn,
            "n": self.state.n,
            "i": self.state.i,
            "group_levels": dict(self._group_levels),
            "spares": self.spares_remaining,
            "term": self.term,
        }
        network = self._net()
        delivered = 0
        for group, level in sorted(self._group_levels.items()):
            for index in range(level):
                try:
                    self.send(
                        parity_node(self.file_id, group, index),
                        "coord.checkpoint",
                        snapshot,
                    )
                    delivered += 1
                except (NodeUnavailable, UnknownNode):
                    continue
        self._appends_since_checkpoint = 0
        if network.tracer is not None:
            network.tracer.emit(
                "coord.checkpoint",
                lsn=snapshot["lsn"],
                delivered=delivered,
            )
        return snapshot

    def arm_crash(self, point: str) -> None:
        """Arm a crash point: the next command reaching it kills this
        coordinator mid-chain (fault injection for takeover tests)."""
        self.crash_points.add(point)

    def _crash_hook(self, point: str) -> None:
        if point not in self.crash_points:
            return
        self.crash_points.discard(point)
        self.crash_log.append(point)
        network = self._net()
        if network.tracer is not None:
            network.tracer.emit("coord.crash", point=point, node=self.node_id)
        network.fail(self.node_id)
        raise CoordinatorCrashed(self.node_id, point)

    # ------------------------------------------------------------------
    # HA message handlers + heartbeat
    # ------------------------------------------------------------------
    def handle_coord_ping(self, message: Message) -> dict:
        """Lease-confirmation probe from a suspicious standby."""
        return {"term": self.term, "lsn": self.journal.last_lsn}

    def handle_coord_journal_fetch(self, message: Message) -> dict:
        """A replica pulls the journal suffix it is missing."""
        after = int(message.payload.get("after", 0))
        return {"records": self.journal.since(after), "term": self.term}

    def handle_coord_whois(self, message: Message) -> dict:
        """Client failover probe: the active primary answers for itself."""
        return {"primary": self.node_id, "ready": True}

    def _heartbeat_tick(self, now: float) -> None:
        """Clock listener: renew the standbys' lease on the primary.

        Self-deactivates when this object is no longer the registered
        coordinator (a standby replaced it) or is currently failed.
        """
        network = self.network
        if network is None or self._hb_busy or not self.standby_ids:
            return
        if network.nodes.get(self.node_id) is not self:
            return
        if self.node_id in network.failed:
            return
        if now - self._last_beat_sent < self.config.heartbeat_interval:
            return
        self._hb_busy = True
        try:
            self._last_beat_sent = now
            beat = {"term": self.term, "lsn": self.journal.last_lsn}
            for standby_id in self.standby_ids:
                try:
                    self.send(standby_id, "coord.heartbeat", beat)
                except (NodeUnavailable, UnknownNode, DeliveryFault):
                    continue
        finally:
            self._hb_busy = False

    # ------------------------------------------------------------------
    # takeover adoption: journal -> checkpoints -> survivor probes
    # ------------------------------------------------------------------
    def adopt_journal_state(self, replayed: JournalState) -> None:
        """Install journal truth, fill gaps from parity checkpoints and
        survivor probes, then roll open intents forward.

        Called by a promoting standby after it registered this object
        under the coordinator node id.  Fallback order follows the
        ISSUE: journal replay first; the newest parity-header checkpoint
        for anything the journal misses; finally the A6-style survivor
        probe (``recover_file_state``'s discipline) when neither knows
        the file state.
        """
        n, i = replayed.n, replayed.i
        group_levels = dict(replayed.group_levels)
        spares = (
            replayed.spares_remaining
            if replayed.spares_known
            else self.config.spare_servers
        )
        if n is None:
            checkpoint = self._fetch_checkpoint()
            if checkpoint is not None:
                n, i = checkpoint["n"], checkpoint["i"]
                for group, level in checkpoint["group_levels"].items():
                    group_levels.setdefault(int(group), level)
                if not replayed.spares_known:
                    spares = checkpoint.get("spares", spares)
        if n is None:
            n, i = self._discover_from_survivors()
        self.state.n, self.state.i = n, i
        self.state.splits_done = max(0, self.state.bucket_count - self.state.n0)
        self._group_levels = {
            group: level
            for group, level in group_levels.items()
            if level != RETIRED
        }
        self.spares_remaining = spares
        # Every group of the current extent must have a known level; a
        # journal-less takeover probes the parity namespace for them.
        for group in range(
            group_count(self.state.bucket_count, self.config.group_size)
        ):
            if group not in self._group_levels:
                level = self._probe_group_level(group)
                if level:
                    self._group_levels[group] = level
        self._journal("takeover", term=self.term)
        self._journal("file.state", n=self.state.n, i=self.state.i)
        # Innermost intent first: a raise triggered inside a split must
        # settle before the split itself is rolled forward.
        for record in sorted(
            replayed.open_intents, key=lambda r: r.lsn, reverse=True
        ):
            self._resume_intent(record)
        if self.standby_ids:
            self.checkpoint_to_parity()

    def _fetch_checkpoint(self) -> dict | None:
        """Newest coordinator checkpoint held by any parity bucket.

        Walks the parity namespace by existence (``UnknownNode`` ends a
        row/column) so it needs no prior knowledge of the group map.
        """
        network = self._net()
        best: dict | None = None
        group = 0
        while True:
            index = 0
            existed = False
            while True:
                node_id = parity_node(self.file_id, group, index)
                try:
                    reply = self.call(node_id, "coord.checkpoint.fetch")
                except UnknownNode:
                    break
                except (NodeUnavailable, DeliveryFault):
                    existed = True
                    index += 1
                    continue
                existed = True
                index += 1
                if reply is not None and (
                    best is None or reply["lsn"] > best["lsn"]
                ):
                    best = dict(reply)
            if not existed:
                break
            group += 1
        return best

    def _discover_from_survivors(self) -> tuple[int, int]:
        """A6 discipline with nothing else to go on: probe data-bucket
        levels sequentially and reconstruct ``(n, i)`` from survivors."""
        levels: dict[int, int] = {}
        bucket = 0
        while True:
            node_id = data_node(self.file_id, bucket)
            try:
                reply = self.call(node_id, "status")
            except UnknownNode:
                break
            except (NodeUnavailable, DeliveryFault):
                bucket += 1
                continue
            levels[reply["bucket"]] = reply["level"]
            bucket += 1
        return reconstruct_state(levels, self.state.n0)

    def _probe_group_level(self, group: int) -> int:
        """How many parity buckets exist for ``group`` (0 = none)."""
        index = 0
        while True:
            node_id = parity_node(self.file_id, group, index)
            try:
                self.call(node_id, "status")
            except UnknownNode:
                break
            except (NodeUnavailable, DeliveryFault):
                pass
            index += 1
        return index

    # ------------------------------------------------------------------
    # intent roll-forward
    # ------------------------------------------------------------------
    def _resume_intent(self, record: JournalRecord) -> None:
        op = record.payload.get("op")
        network = self._net()
        if network.tracer is not None:
            network.tracer.emit("coord.resume", op=op, lsn=record.lsn)
        self.takeover_resumes.append({"op": op, "lsn": record.lsn})
        if op == "split":
            self._resume_split(record)
        elif op == "merge":
            self._resume_merge(record)
        elif op == "raise":
            self._resume_raise(record)
        elif op == "recover":
            self._resume_recover(record)
        else:
            self._journal("intent.end", begin=record.lsn, outcome="abort")

    def _resume_split(self, record: JournalRecord) -> None:
        """Roll an interrupted split forward.

        The crash window leaves the target registered (possibly empty)
        and the source either pre- or post-partition.  ``handle_split``
        is idempotent on already-partitioned content (it moves nothing
        and re-asserts the level), so: recover participants, re-issue
        the structural command if the source's level says it never ran,
        then commit the post-split state.
        """
        payload = record.payload
        source, target = payload["source"], payload["target"]
        new_level = payload["new_level"]
        m = self.config.group_size
        network = self._net()
        source_id = data_node(self.file_id, source)
        target_id = data_node(self.file_id, target)
        # Group infrastructure for the target may be half-born.
        if target % m == 0:
            group = group_of(target, m)
            if group not in self._group_levels:
                self._create_group(group)
            else:
                for index in range(self._group_levels[group]):
                    node_id = parity_node(self.file_id, group, index)
                    if node_id not in network.nodes:
                        network.register(self.make_parity_server(group, index))
        # Recover the source under the *pre-split* directory (its level
        # label must match the extent the parity data describes).
        self._ensure_available(source_id)
        source_level = self.call(source_id, "status")["level"]
        self.state.n, self.state.i = payload["post_n"], payload["post_i"]
        self.state.splits_done = max(0, self.state.bucket_count - self.state.n0)
        if target_id not in network.nodes:
            network.register(self.make_server(target, new_level))
        self._ensure_available(target_id)
        if source_level < new_level:
            result = self._structural_call(
                source_id, "split", {"target": target, "new_level": new_level}
            )
            self._sizes[source] = result["kept"]
            self._sizes[target] = result["moved"]
        self._journal("file.state", n=self.state.n, i=self.state.i)
        self._journal("intent.end", begin=record.lsn)

    def _resume_merge(self, record: JournalRecord) -> None:
        """Roll an interrupted merge forward.

        The crash window leaves the absorber's level possibly already
        lowered and the dissolving bucket still registered with its
        records; re-running ``level.set`` (absolute) and the structural
        merge (moves whatever is still there) converges either way.
        """
        payload = record.payload
        source, target = payload["source"], payload["target"]
        level, retiring = payload["level"], payload["retiring"]
        m = self.config.group_size
        network = self._net()
        source_id = data_node(self.file_id, source)
        target_id = data_node(self.file_id, target)
        self.state.n, self.state.i = payload["post_n"], payload["post_i"]
        self.state.splits_done = max(0, self.state.bucket_count - self.state.n0)
        self._ensure_available(source_id)
        with self._restructure_lock():
            before = len(self._pending_overflows)
            self.send(source_id, "level.set", {"level": level})
            if target_id in network.nodes:
                self._structural_call(
                    target_id, "merge", {"into": source, "retiring": retiring}
                )
                network.unregister(target_id)
            self.on_bucket_removed(target)
            # Same rule as merge_once: overflow reports raised by the
            # merge's own record movement would split right back.
            del self._pending_overflows[before:]
        if not retiring:
            group = group_of(target, m)
            if group in self._group_levels:
                for index in range(self.group_level(group)):
                    node_id = parity_node(self.file_id, group, index)
                    if network.is_available(node_id):
                        self.send(
                            node_id, "parity.reset",
                            {"positions": [target % m]},
                        )
        self._sizes.pop(target, None)
        self._journal("file.state", n=self.state.n, i=self.state.i)
        self._journal("intent.end", begin=record.lsn)

    def _resume_raise(self, record: JournalRecord) -> None:
        """Abort a half-done availability raise, then redo it.

        Partially encoded new parity columns are unregistered and the
        group's level reset to the pre-raise value — the redo is then an
        ordinary (atomic-at-this-layer) ``raise_group_level``.
        """
        payload = record.payload
        group = payload["group"]
        from_level, to_level = payload["from_level"], payload["to_level"]
        network = self._net()
        for index in range(from_level, to_level):
            node_id = parity_node(self.file_id, group, index)
            if node_id in network.nodes:
                network.unregister(node_id)
        if self._group_levels.get(group, 0) > from_level:
            self._group_levels[group] = from_level
            self._journal("group.level", group=group, level=from_level)
        self._journal("intent.end", begin=record.lsn, outcome="abort")
        if group not in self._group_levels:
            return  # the group has since retired
        buckets = group_buckets(
            group, self.config.group_size, self.state.bucket_count
        )
        self._ensure_available(
            *[data_node(self.file_id, b) for b in buckets]
        )
        self.raise_group_level(group, to_level)

    def _resume_recover(self, record: JournalRecord) -> None:
        """Abort the interrupted recovery intent and re-probe the group.

        Recovery is idempotent roll-forward by construction (spares are
        fresh objects, installs re-run); what matters after a takeover
        is that still-down members get rebuilt, which the best-effort
        re-recovery does.
        """
        self._journal("intent.end", begin=record.lsn, outcome="abort")
        group = record.payload["group"]
        if group not in self._group_levels:
            return
        network = self._net()
        members = [
            data_node(self.file_id, b)
            for b in group_buckets(
                group, self.config.group_size, self.state.bucket_count
            )
        ] + [
            parity_node(self.file_id, group, index)
            for index in range(self.group_level(group))
        ]
        down = [n for n in members if not network.is_available(n)]
        if down:
            self.recovery.recover_nodes(down, best_effort=True)

    # ------------------------------------------------------------------
    # group/parity bookkeeping
    # ------------------------------------------------------------------
    def group_level(self, group: int) -> int:
        """Current availability level k of a bucket group."""
        try:
            return self._group_levels[group]
        except KeyError:
            raise KeyError(f"bucket group {group} does not exist") from None

    @property
    def group_levels(self) -> dict[int, int]:
        """Read-only view of every group's availability level."""
        return dict(self._group_levels)

    def parity_row(self, index: int) -> list[int]:
        """Generator row for parity bucket ``index`` (nested rows).

        With the normalized Cauchy construction, row ``index`` of the
        (m, k) parity matrix is the same for every k > index, so the row
        can be issued before knowing how high k will ever scale.
        """
        matrix = parity_matrix(
            self.field, self.config.group_size, index + 1, self.config.generator
        )
        return matrix.row(index)

    def make_parity_server(self, group: int, index: int) -> ParityServer:
        server = ParityServer(
            node_id=parity_node(self.file_id, group, index),
            file_id=self.file_id,
            group=group,
            index=index,
            row=self.parity_row(index),
            field=self.field,
            stripe_store=self.config.parity_stripe_store,
        )
        server.inbound_queue_limit = self.config.bucket_queue_limit
        if self.config.durability:
            server.epoch = self._bucket_epochs.get(server.node_id, 0)
            server.enable_durability(self.config)
        return server

    def make_server(self, number: int, level: int) -> RSDataServer:
        group = group_of(number, self.config.group_size)
        targets = [
            parity_node(self.file_id, group, i)
            for i in range(self._group_levels.get(group, 0))
        ]
        server = RSDataServer(
            node_id=data_node(self.file_id, number),
            file_id=self.file_id,
            number=number,
            level=level,
            capacity=self.capacity,
            n0=self.state.n0,
            group_size=self.config.group_size,
            parity_targets=targets,
            compact_ranks=self.config.compact_ranks,
            parity_batch_size=self.config.parity_batch_size,
            field_width=self.config.field_width,
            retry_policy=self.config.retry_policy,
            parity_ack=self.config.parity_ack,
        )
        server.inbound_queue_limit = self.config.bucket_queue_limit
        if self.config.durability:
            server.epoch = self._bucket_epochs.get(server.node_id, 0)
            server.enable_durability(self.config)
        return server

    def bump_epoch(self, node_id: str) -> int:
        """Advance a bucket address's incarnation (spare install fence)."""
        epoch = self._bucket_epochs.get(node_id, 0) + 1
        self._bucket_epochs[node_id] = epoch
        return epoch

    # ------------------------------------------------------------------
    # growth hooks
    # ------------------------------------------------------------------
    def bootstrap(self) -> None:
        """Create group 0's parity buckets, then the initial data buckets."""
        self._create_group(0)
        super().bootstrap()
        self._journal("file.state", n=self.state.n, i=self.state.i)

    def _create_group(self, group: int) -> None:
        level = self.config.effective_policy.level_for(
            group_count(self.state.bucket_count, self.config.group_size) or 1
        )
        self._group_levels[group] = level
        self._journal("group.level", group=group, level=level)
        for index in range(level):
            self._net().register(self.make_parity_server(group, index))

    def on_new_bucket(self, number: int, level: int) -> None:
        if number % self.config.group_size == 0:
            self._create_group(group_of(number, self.config.group_size))
        self._maybe_scale_availability()

    def merge_once(self) -> tuple[int, int]:
        """Shrink by one bucket, maintaining parity on both groups.

        The dissolving bucket's records leave its record groups (batched
        Δ-deletes) and re-enter the absorber's (fresh ranks, batched
        Δ-inserts, via the ordinary bulk path).  When the dissolving
        bucket was its group's only member, the whole group — parity
        buckets included — retires with it.
        """
        if self.state.bucket_count <= self.state.n0:
            raise ValueError("cannot shrink below the initial buckets")
        m = self.config.group_size
        target = self.state.bucket_count - 1
        retiring = target % m == 0  # group's first and only bucket
        # Both participants must be up before the state retreats (see
        # _ensure_available on why recovery cannot happen mid-command).
        # The absorber is the bucket whose split created the last one —
        # retreat_merge's source, computed here without mutating state.
        if self.state.n:
            peek_source = self.state.n - 1
        else:
            peek_source = (1 << (self.state.i - 1)) * self.state.n0 - 1
        self._ensure_available(
            data_node(self.file_id, target),
            data_node(self.file_id, peek_source),
        )
        tracer = self._net().tracer
        if tracer is not None:
            tracer.emit("merge.start", target=target, retiring=retiring)
        post = self.state.copy()
        peek = post.retreat_merge()
        begin = self._journal(
            "intent.begin",
            op="merge",
            source=peek[0],
            target=peek[1],
            level=peek[2],
            retiring=retiring,
            post_n=post.n,
            post_i=post.i,
        )
        with self._restructure_lock():
            before = len(self._pending_overflows)
            source, _, level = self.state.retreat_merge()
            self.send(data_node(self.file_id, source), "level.set",
                      {"level": level})
            self._crash_hook("merge.mid")
            self._structural_call(
                data_node(self.file_id, target), "merge",
                {"into": source, "retiring": retiring},
            )
            self._net().unregister(data_node(self.file_id, target))
            self.on_bucket_removed(target)
            if not retiring:
                # The group lives on: close the dissolved bucket's
                # Δ-channels so a future split re-creating it (fresh
                # sequence counter) is not mistaken for retransmissions.
                group = group_of(target, m)
                for index in range(self.group_level(group)):
                    self.send(
                        parity_node(self.file_id, group, index),
                        "parity.reset",
                        {"positions": [target % m]},
                    )
            self._sizes.pop(target, None)
            # Drop overflow reports raised by the merge's own movement
            # (see the base class note on merge/split ping-pong).
            del self._pending_overflows[before:]
        self._journal("file.state", n=self.state.n, i=self.state.i)
        self._journal("intent.end", begin=begin.lsn)
        if tracer is not None:
            tracer.emit("merge.end", source=source, target=target)
        return source, target

    def on_bucket_removed(self, number: int) -> None:
        if number % self.config.group_size == 0:
            group = group_of(number, self.config.group_size)
            level = self._group_levels.pop(group, None)
            if level is None:
                return  # already retired (idempotent under resume)
            self._journal("group.level", group=group, level=RETIRED)
            network = self._net()
            for index in range(level):
                node_id = parity_node(self.file_id, group, index)
                if node_id in network.nodes:
                    network.unregister(node_id)

    def _maybe_scale_availability(self) -> None:
        """Retrofit existing groups when the policy raised the level."""
        if not self.config.upgrade_existing_groups:
            return
        groups = group_count(self.state.bucket_count + 1, self.config.group_size)
        target = self.config.effective_policy.level_for(groups)
        for group, current in sorted(self._group_levels.items()):
            if current < target:
                self.raise_group_level(group, target)

    def raise_group_level(self, group: int, new_level: int) -> None:
        """Add parity buckets to an existing group and encode them.

        The new buckets' contents are computed by the recovery machinery
        (a "loss" of the new indices against zero prior content is
        exactly an encode), then the group's data servers are told their
        new parity targets.
        """
        current = self.group_level(group)
        if new_level <= current:
            return
        tracer = self._net().tracer
        if tracer is not None:
            tracer.emit(
                "availability.raise",
                group=group,
                level=current,
                new_level=new_level,
            )
        if self.config.generator != "cauchy":
            raise RecoveryError(
                "raising availability needs nested generator rows; "
                "only the cauchy construction provides them"
            )
        # Read the group's data *before* committing anything: a dead
        # member surfaces here and leaves the group untouched (recover
        # it, then retry the raise).
        ops, expected_seqs = self._collect_group_ops(group)
        begin = self._journal(
            "intent.begin",
            op="raise",
            group=group,
            from_level=current,
            to_level=new_level,
        )
        for index in range(current, new_level):
            self._net().register(self.make_parity_server(group, index))
        self._group_levels[group] = new_level
        self._journal("group.level", group=group, level=new_level)
        self._crash_hook("raise.mid")
        for index in range(current, new_level):
            self.send(
                parity_node(self.file_id, group, index),
                "parity.batch",
                {"ops": ops, "expected_seqs": expected_seqs},
            )
        targets = [
            parity_node(self.file_id, group, i) for i in range(new_level)
        ]
        for bucket in group_buckets(
            group, self.config.group_size, self.state.bucket_count
        ):
            self.send(
                data_node(self.file_id, bucket),
                "config.parity",
                {"targets": targets},
            )
        self._journal("intent.end", begin=begin.lsn)

    def _collect_group_ops(self, group: int) -> tuple[list[dict], dict[int, int]]:
        """Dump a group's data as (unsequenced) insert Δ-ops plus the
        channel expectations a fresh parity bucket should start from.

        The ops feed new parity buckets in one encode batch; the
        expectations make any in-flight or retransmitted Δ from before
        the dump a detectable duplicate at the new bucket.
        """
        m = self.config.group_size
        buckets = group_buckets(group, m, self.state.bucket_count)
        ops_by_rank: dict[int, list] = {}
        expected_seqs: dict[int, int] = {}
        for bucket in buckets:
            dump = self.call(data_node(self.file_id, bucket), "bucket.dump")
            pos = bucket % m
            expected_seqs[pos] = dump.get("parity_seq", 0) + 1
            for key, rank, payload in dump["records"]:
                ops_by_rank.setdefault(rank, []).append(
                    {
                        "op": "insert",
                        "key": key,
                        "rank": rank,
                        "pos": pos,
                        "delta": payload,
                        "length": len(payload),
                    }
                )
        ops = [op for rank in sorted(ops_by_rank) for op in ops_by_rank[rank]]
        return ops, expected_seqs

    # ------------------------------------------------------------------
    # unavailability handling
    # ------------------------------------------------------------------
    def handle_report_unavailable(self, message: Message) -> None:
        """A client or server hit an unavailable bucket.

        Key searches are answered immediately through record recovery
        (degraded mode) when enabled; the failed bucket (and any other
        casualties in its group) is then rebuilt onto a spare so later
        operations proceed normally.
        """
        payload = message.payload
        kind, op = payload.get("kind"), payload.get("op")
        tracer = self._net().tracer
        if tracer is not None:
            tracer.emit(
                "report.unavailable", node=payload.get("node"), kind=kind
            )

        if kind == "search" and op and self.config.degraded_reads:
            found, value = self.recovery.recover_record(op["key"])
            self.send(
                op["client"],
                "search.result",
                {
                    "request": op["request"],
                    "key": op["key"],
                    "found": found,
                    "value": value,
                },
            )
            op = None  # already served

        node_id = payload["node"]
        if self.config.auto_recover:
            if not self._net().is_available(node_id):
                self.recovery.recover_nodes([node_id])
        elif op is not None or kind is None:
            # Mutations and parity-update failures cannot proceed in
            # degraded mode — losing them silently is never acceptable.
            raise RecoveryError(
                f"{node_id} is unavailable and auto_recover is disabled"
            )
        if op is not None:
            # Complete the mutation against the recovered bucket.
            self.deliver_routed(kind, dict(op, hops=op.get("hops", 0) + 1),
                                self.state.address(op["key"]))

    def handle_read_degraded(self, message: Message) -> dict:
        """Serve one key through record recovery while its data bucket
        is *slow but alive* — the client's hedged / circuit-broken
        alternate read path (gray-failure tolerance).

        Unlike :meth:`handle_report_unavailable` nothing is declared
        failed and no rebuild starts: the bucket still answers pings,
        it is merely blowing its latency SLO, so the coordinator only
        reconstructs the record from the group's other members and
        parity.  ``served=False`` tells the client to fall back to the
        primary's answer (no parity, or a member genuinely down).
        """
        key = message.payload["key"]
        if not self.config.degraded_reads:
            return {"served": False, "found": False, "value": None}
        try:
            found, value = self.recovery.recover_record(key)
        except (RecoveryError, NodeUnavailable, DeliveryFault):
            return {"served": False, "found": False, "value": None}
        return {"served": True, "found": found, "value": value}

    def deliver_routed(self, kind: str, op: dict, target: int) -> None:
        try:
            self.send(data_node(self.file_id, target), kind, op)
        except NodeUnavailable:
            if not self.config.auto_recover:
                raise
            self.recovery.recover_nodes([data_node(self.file_id, target)])
            self.send(data_node(self.file_id, target), kind, op)

    def _ensure_available(self, *node_ids: str) -> None:
        """Recover any of the given nodes that are currently down.

        Called *before* a structural change (split/merge) touches the
        file state: recovering then is safe because the rebuilt bucket's
        level still matches the directory.  Recovering after the state
        advanced would rebuild at the post-change level while the
        content is still pre-change — which is why the restructuring
        paths never try to recover mid-command.  (Node crashes only
        happen between operation chains, so a participant alive here is
        alive for the whole command.)
        """
        down = [n for n in node_ids if not self._net().is_available(n)]
        if down and self.config.auto_recover:
            self.recovery.recover_nodes(down)

    def split_once(self) -> tuple[int, int]:
        source, target, new_level = self.state.next_split()
        self._ensure_available(data_node(self.file_id, source))
        post = self.state.copy()
        post.advance_split()
        begin = self._journal(
            "intent.begin",
            op="split",
            source=source,
            target=target,
            new_level=new_level,
            post_n=post.n,
            post_i=post.i,
        )
        result = super().split_once()
        self._journal("file.state", n=self.state.n, i=self.state.i)
        self._journal("intent.end", begin=begin.lsn)
        return result

    def handle_report_stale(self, message: Message) -> None:
        """A parity bucket detected a gap in its Δ stream (or a sender
        exhausted its retry budget against it): its content no longer
        reflects the group's data.  Rebuild it from the data, which is
        always current (mutations precede their Δ sends).
        """
        node_id = message.payload["node"]
        tracer = self._net().tracer
        if tracer is not None:
            tracer.emit("report.stale", node=node_id)
        if not self.config.auto_recover:
            raise RecoveryError(
                f"{node_id} reported stale parity and auto_recover is disabled"
            )
        self.recovery.recover_nodes([node_id])

    def probe(self, best_effort: bool = False) -> dict:
        """Actively sweep every server for unavailability and recover.

        The papers let the coordinator detect failures itself (e.g.
        while requesting a split); this models a full probe round:
        multicast a status ping to every data and parity bucket, recover
        whatever did not answer.  ``best_effort`` (the self-healing
        loop) records per-group recovery failures instead of raising.
        Returns the probe summary.
        """
        targets = [
            data_node(self.file_id, b) for b in self.state.buckets()
        ] + [
            parity_node(self.file_id, g, i)
            for g, level in sorted(self._group_levels.items())
            for i in range(level)
        ]
        network = self._net()
        replies, unavailable = network.multicast(self.node_id, targets, "status")
        # A parity bucket that detected a Δ gap while the coordinator
        # was unreachable carries the staleness in its status reply —
        # the probe sweeps it up even though the report.stale was lost.
        stale = sorted(
            node for node, reply in replies.items() if reply.get("stale")
        )
        summary = {
            "probed": len(targets),
            "unavailable": list(unavailable),
            "stale": stale,
        }
        if network.tracer is not None:
            network.tracer.emit(
                "probe.round",
                probed=len(targets),
                unavailable=len(unavailable),
            )
        for node in unavailable:
            self._down_since.setdefault(node, network.now)
        needs_recovery = list(unavailable) + stale
        if needs_recovery and self.config.auto_recover:
            summary["recovered"] = self.recovery.recover_nodes(
                needs_recovery, best_effort=best_effort
            )
        # Repair-time accounting: a node first seen down at t_down that
        # answers again now contributes (now - t_down) to probe.mttr.
        # MTTR_BUCKETS is a module-level import: the accounting (and the
        # _down_since bookkeeping) must not depend on the metrics layer.
        if self._down_since:
            metrics = network.metrics
            for node in list(self._down_since):
                if network.is_available(node):
                    downtime = network.now - self._down_since.pop(node)
                    if metrics is not None:
                        metrics.histogram(
                            "probe.mttr",
                            MTTR_BUCKETS,
                            "probe-cycle repair time",
                        ).observe(downtime)
        return summary

    def run_probe_cycle(
        self, rounds: int = 1, advance_per_round: float = 1.0
    ) -> list[dict]:
        """The autonomous self-healing loop: probe, recover, log, repeat.

        Each round advances the simulated clock (letting scheduled
        crash/restore windows fire and delayed messages mature), sweeps
        every server, recovers what it can — best-effort, so a group
        beyond help or an exhausted spare pool is recorded rather than
        fatal — and appends a health entry to :attr:`health_log`.
        Returns this cycle's entries.
        """
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        entries: list[dict] = []
        for _ in range(rounds):
            if advance_per_round:
                self._net().advance(advance_per_round)
            summary = self.probe(best_effort=True)
            recovered = summary.get("recovered", {})
            entry = {
                "time": self._net().now,
                "probed": summary["probed"],
                "unavailable": list(summary["unavailable"]),
                "stale": list(summary.get("stale", [])),
                "recovered_groups": recovered.get("groups", 0),
                "recovered_data_buckets": recovered.get("data_buckets", 0),
                "recovered_parity_buckets": recovered.get("parity_buckets", 0),
                "records_rebuilt": recovered.get("records", 0),
                "errors": recovered.get("errors", []),
                "spares_remaining": self.spares_remaining,
            }
            self.health_log.append(entry)
            entries.append(entry)
        net = self._net()
        if net.metrics is not None:
            net.metrics.gauge(
                "coord.health_log.dropped",
                "health entries evicted from the bounded ring",
            ).set(self.health_log.dropped)
        return entries

    def handle_rejoin(self, message: Message) -> dict:
        """Self-detected recovery (§2.5.4-style): a restarted server asks
        whether it still carries its bucket or was replaced meanwhile.

        A payload carrying an ``epoch`` is the durable-storage handshake
        (docs/durability.md): the server replayed its WAL, is fenced, and
        asks to be caught up from the missed Δ tail.  The coordinator
        admits it only when its incarnation matches (no spare was
        installed under the address meanwhile) and the local replay was
        clean; otherwise — or when the delta tail is no longer covered —
        it falls back to a full RS rebuild onto a spare.  Payloads
        without ``epoch`` keep the legacy answer-only behavior."""
        node_id = message.payload["node"]
        parsed = parse_node_id(self.file_id, node_id)
        if parsed is None:
            return {"role": "unknown"}
        current = self._net().nodes.get(node_id)
        sender = self._net().nodes.get(message.sender)
        if current is not None and current is sender:
            if "epoch" in message.payload:
                return self._rejoin_durable(parsed, message.payload)
            return {"role": "current"}
        return {"role": "spare", "replacement": node_id}

    def _rejoin_durable(self, parsed, payload: dict) -> dict:
        node_id = payload["node"]
        expected = self._bucket_epochs.get(node_id, 0)
        if payload["epoch"] != expected or not payload.get("clean", False):
            return self._rejoin_rebuild(node_id)
        try:
            if parsed[0] == "data":
                caught = self.recovery.catch_up_data(parsed[1], payload)
            else:
                caught = self.recovery.catch_up_parity(
                    parsed[1], parsed[2], payload
                )
        except (RecoveryError, NodeUnavailable, UnknownNode, DeliveryFault):
            caught = False
        if not caught:
            return self._rejoin_rebuild(node_id)
        return {"role": "caught-up"}

    def _rejoin_rebuild(self, node_id: str) -> dict:
        """Delta catch-up refused or impossible: full rebuild fallback."""
        net = self._net()
        if net.tracer is not None:
            net.tracer.emit("catchup.fallback", node=node_id)
        if net.metrics is not None:
            net.metrics.counter(
                "catchup.fallbacks",
                "restarts that fell back to a full RS rebuild",
            ).inc()
        if net.is_available(node_id):
            net.fail(node_id)
        try:
            self.recovery.recover_nodes([node_id])
        except RecoveryError:
            # Not recoverable right now (spares exhausted, too many
            # losses); the self-healing probe loop retries later.
            return {"role": "fenced"}
        return {"role": "rebuilt"}
