"""The LH*RS data bucket server.

Extends the LH* data server with the paper's high-availability duties:

* every accepted record gets a **rank** from the bucket's insert counter
  (freed ranks are reused, keeping record groups dense — the §4.3-style
  enhancement, done locally);
* every mutation ships a **Δ-record** to each parity bucket of the
  bucket group (1 + k messages per insert/update/delete);
* a **split** removes the movers from this group's record groups and the
  target re-inserts them into its own — record group membership always
  follows the record's *current* bucket, so any two members of a record
  group are in distinct buckets of one group by construction.  The
  split's parity traffic is batched: one message per affected parity
  bucket instead of one per record (the paper's bulk-transfer note).
"""

from __future__ import annotations

import heapq
import zlib
from collections import deque
from contextlib import contextmanager
from typing import Any

import numpy as np

from repro.check import mutants
from repro.core.group import data_node, group_of, position_of
from repro.lh import addressing
from repro.sdds.server import DataServer
from repro.sim.faults import RetryPolicy
from repro.sim.messages import HEADER_BYTES, Message
from repro.sim.network import DeliveryFault, NodeUnavailable, UnknownNode
from repro.rs.encoder import delta_payload
from repro.store.simdisk import DiskError, SimDisk, disk_rng
from repro.store.wal import BucketLog

#: Kinds a fenced (restarted, not yet caught-up) data bucket refuses
#: with NodeUnavailable: everything that serves or mutates record state.
#: Catch-up traffic (catchup.load, wal.tail), structural commands and
#: status probes stay answerable — a fenced bucket is indistinguishable
#: from a dead one to the data plane, nothing more.
DATA_FENCED_KINDS = frozenset(
    {
        "insert",
        "update",
        "delete",
        "search",
        "scan",
        "ops.batch",
        "record.fetch",
        "bucket.dump",
        "signature.dump",
    }
)


class RSDataServer(DataServer):
    """One LH*RS data bucket: LH* behaviour plus parity maintenance."""

    def __init__(
        self,
        node_id: str,
        file_id: str,
        number: int,
        level: int,
        capacity: int,
        n0: int,
        group_size: int,
        parity_targets: list[str] | None = None,
        compact_ranks: bool = False,
        parity_batch_size: int = 1,
        field_width: int = 8,
        retry_policy: RetryPolicy | None = None,
        parity_ack: bool = False,
    ):
        super().__init__(node_id, file_id, number, level, capacity, n0)
        from repro.gf.field import GF

        self.group_size = group_size
        self.compact_ranks = compact_ranks
        self.parity_batch_size = parity_batch_size
        self.field = GF(field_width)
        #: Δ-records accumulated in lazy mode, FIFO
        self._parity_queue: list[dict] = []
        self.group = group_of(number, group_size)
        self.position = position_of(number, group_size)
        #: parity bucket node ids of this group, index order
        self.parity_targets = list(parity_targets or [])
        self._rank_counter = 0
        self._free_ranks: list[int] = []
        #: key -> rank for every stored record
        self.ranks: dict[int, int] = {}
        #: rank -> key reverse index (kept in lockstep with ``ranks``)
        #: so compaction finds the highest occupied rank in O(1) amortized
        self._rank_to_key: dict[int, int] = {}
        #: >0 while a client batch is applying: Δ-records coalesce into
        #: the queue and ship as one parity.batch per target at depth 0
        self._coalesce_depth = 0
        self.retry_policy = retry_policy or RetryPolicy()
        self.parity_ack = parity_ack
        #: monotonic Δ sequence number; the *same* stream goes to every
        #: parity bucket, so one counter serves all channels from here
        self._parity_seq = 0
        # durable storage plane (None = the legacy RAM-only server;
        # enable_durability wires it when config.durability is on)
        self._disk = None
        self._wal = None
        self._delta_history: deque | None = None
        self._ckpt_interval = 0
        self._appends_since_ckpt = 0
        #: incarnation stamped by the coordinator; a rebuilt spare under
        #: the same node id gets a higher epoch, fencing stale disks
        self.epoch = 0
        #: True between restart-replay and catch-up completion: the
        #: bucket answers catch-up traffic but refuses the data plane
        self.fenced = False
        self._restarting = False

    # ------------------------------------------------------------------
    # fencing
    # ------------------------------------------------------------------
    def receive(self, message: Message) -> Any:
        if self.fenced and message.kind in DATA_FENCED_KINDS:
            failure = NodeUnavailable(self.node_id)
            failure.fenced = True
            raise failure
        return super().receive(message)

    # ------------------------------------------------------------------
    # rank management
    # ------------------------------------------------------------------
    def _take_rank(self) -> int:
        """Smallest free rank, else a fresh one.

        Taking the *lowest* free rank keeps each bucket's occupied rank
        set dense ({1..size} under pure growth), which maximizes record
        group occupancy across the bucket group — the storage-overhead
        figure of experiment E1 rides on this (§4.3's counter-reuse
        enhancement, applied locally at allocation time).
        """
        if self._free_ranks:
            return heapq.heappop(self._free_ranks)
        self._rank_counter += 1
        return self._rank_counter

    def _take_ranks(self, count: int) -> list[int]:
        """``count`` ranks in one pass — the same ranks ``count``
        successive :meth:`_take_rank` calls would hand out."""
        out: list[int] = []
        while self._free_ranks and len(out) < count:
            out.append(heapq.heappop(self._free_ranks))
        while len(out) < count:
            self._rank_counter += 1
            out.append(self._rank_counter)
        return out

    def _release_rank(self, rank: int) -> None:
        heapq.heappush(self._free_ranks, rank)

    def _assign_rank(self, key: int, rank: int) -> None:
        self.ranks[key] = rank
        self._rank_to_key[rank] = key

    def _unassign_rank(self, key: int) -> int:
        rank = self.ranks.pop(key)
        del self._rank_to_key[rank]
        return rank

    def _compact(self) -> list[dict]:
        """§4.3-style rank compaction; returns the parity ops it implies.

        Drains the free list: freed ranks inside the dense range
        {1..size} absorb the highest-ranked records (a delete + insert
        pair per move, batched by the caller); freed ranks above it are
        simply retired by shrinking the counter.  Afterwards the bucket's
        ranks are exactly {1..size} again.

        The highest occupied rank comes from the ``_rank_to_key``
        reverse index via a pointer walking down from the counter — the
        maximum only decreases across the drain (each move fills a rank
        below ``target`` < the vacated maximum), so the whole drain is
        O(moves + ranks scanned once), not O(moves × bucket size).
        """
        ops: list[dict] = []
        if not self.compact_ranks:
            return ops
        target = len(self.ranks)
        high = self._rank_counter
        while self._free_ranks:
            free = heapq.heappop(self._free_ranks)
            if free > target:
                continue  # beyond the dense range: retire silently
            while high not in self._rank_to_key:
                high -= 1
            key_max, r_max = self._rank_to_key[high], high
            payload = self.bucket.get(key_max)
            ops.append(self._parity_op("delete", key_max, r_max, payload, 0))
            op = self._parity_op("insert", key_max, free, payload, len(payload))
            ops.append(op)
            del self._rank_to_key[r_max]
            self._assign_rank(key_max, free)
        self._rank_counter = target
        if self._wal is not None:
            # the move ops logged above; the counter shrink (and drained
            # free list) is the one effect they do not imply
            self._log_entry({"ctl": "counter", "counter": target})
        return ops

    # ------------------------------------------------------------------
    # parity messaging
    # ------------------------------------------------------------------
    def _parity_op(
        self, action: str, key: int, rank: int, delta: bytes, length: int
    ) -> dict:
        # The sequence number is taken at *creation* time, after the
        # local mutation: "everything through seq S is reflected in my
        # store" then holds by construction, which is what lets a parity
        # spare rebuilt from dumps treat any in-flight retransmission of
        # seq <= S as a duplicate.
        self._parity_seq += 1
        op = {
            "op": action,
            "key": key,
            "rank": rank,
            "pos": self.position,
            "delta": delta,
            "length": length,
            "seq": self._parity_seq,
        }
        if self._wal is not None:
            # WAL-before-send: the mutation already applied locally, and
            # it hits disk before the Δ leaves (or the op is acked), so
            # every acked operation is in the durable prefix + fsync
            # staleness window by construction.
            self._log_entry(op)
        return op

    def _send_parity(self, op: dict) -> None:
        if "drop_parity_seq" in mutants.ACTIVE and op["op"] == "update":
            # Validation mutant: silently drop every second update Δ
            # *and roll the sequence counter back*, so the channel sees
            # no gap — the self-reporting report.stale machinery stays
            # blind and parity silently decodes stale after the next
            # bucket loss (tests/check/test_mutants.py).
            self._mutant_update_deltas = (
                getattr(self, "_mutant_update_deltas", 0) + 1
            )
            if self._mutant_update_deltas % 2 == 0:
                self._parity_seq -= 1
                return
        if self._coalesce_depth:
            # Client-batch coalescing: hold every Δ (no size-triggered
            # flush) and ship one parity.batch per target at batch end.
            self._parity_queue.append(op)
            return
        if self.parity_batch_size > 1:
            # Lazy mode: queue and flush when the batch fills.  The
            # queue is the vulnerability window — a crash loses it.
            self._parity_queue.append(op)
            if len(self._parity_queue) >= self.parity_batch_size:
                self.flush_parity()
            return
        self._fanout("parity.update", op)

    def _parity_block(
        self,
        action: str,
        keys: list[int],
        ranks: list[int],
        deltas: list[bytes],
        lengths: list[int],
    ) -> dict:
        """One columnar Δ-block: a same-position ``action`` run over
        parallel columns, carrying the next ``len(keys)`` consecutive
        sequence numbers.  The parity bucket folds it through one
        stacked kernel (:meth:`ParityServer._fold_block`)."""
        seq0 = self._parity_seq + 1
        self._parity_seq += len(keys)
        block = {
            "block": action,
            "pos": self.position,
            "seq0": seq0,
            "keys": keys,
            "ranks": ranks,
            "deltas": deltas,
            "lengths": lengths,
        }
        if self._wal is not None:
            self._log_entry(block)
        return block

    def _send_parity_block(self, block: dict) -> None:
        """Queue one columnar block in the Δ stream (FIFO with per-op
        Δs); blocks only arise inside a coalesced client batch, but a
        bare one still flushes immediately to keep stream order."""
        self._parity_queue.append(block)
        if not self._coalesce_depth:
            self.flush_parity()

    @staticmethod
    def _parity_batch_size_of(ops: list[dict]) -> int:
        """Wire size of a ``{"ops": [...]}`` parity batch, arithmetically.

        A per-op Δ is a 7-field :meth:`_parity_op` dict (26 bytes of key
        strings + five 8-byte ints + the action string + the Δ bytes); a
        columnar block is 34 bytes of key strings, the action, two
        8-byte ints and three 8-byte-int columns plus the Δ bytes.  The
        envelope's generic payload walk is replaced by one sum, computed
        once per batch instead of once per parity target.
        ``tests/core/test_batch_ops.py`` pins equality with
        :func:`~repro.sim.messages.estimate_size`.
        """
        total = HEADER_BYTES + 3
        for op in ops:
            if "block" in op:
                total += (
                    50 + len(op["block"]) + 24 * len(op["keys"])
                    + sum(len(d) for d in op["deltas"])
                )
            else:
                total += 66 + len(op["op"]) + len(op["delta"])
        return total

    def flush_parity(self) -> int:
        """Ship every queued Δ-record now; returns how many flushed."""
        if not self._parity_queue:
            return 0
        ops, self._parity_queue = self._parity_queue, []
        self._fanout("parity.batch", {"ops": ops},
                     size=self._parity_batch_size_of(ops))
        return len(ops)

    def _send_parity_batch(self, ops: list[dict]) -> None:
        if self._coalesce_depth:
            # Mid-client-batch structural work (split deletes, merges,
            # compaction) joins the coalesced queue; seqs were taken at
            # creation, so queue order stays the Δ-stream order.
            self._parity_queue.extend(ops)
            return
        # Structural batches (splits, merges, compaction) must apply
        # after any queued per-record Δs — flush preserves FIFO order.
        self.flush_parity()
        if not ops:
            return
        self._fanout("parity.batch", {"ops": ops},
                     size=self._parity_batch_size_of(ops))

    def _fanout(self, kind: str, payload: Any, size: int = 0) -> None:
        """One Δ (or batch) to every parity target, then escalations.

        Escalation reports are *deferred* until every reachable target
        received the Δ.  Reporting mid-loop would trigger a group
        recovery that reads this bucket (already mutated, Δ counted)
        together with a surviving parity bucket later in the loop
        (Δ not yet delivered) — survivors misaligned by one in-flight
        operation, which a decode would turn into resurrected or
        vanished records.  After the loop, every live parity bucket has
        the Δ and every reported one gets rebuilt from current data.
        """
        reports = []
        for target in self.parity_targets:
            report = self._send_parity_to(target, kind, payload, size)
            if report is not None:
                reports.append(report)
        for report_kind, report_payload in reports:
            try:
                self.send(self._coordinator(), report_kind, report_payload)
            except (NodeUnavailable, UnknownNode):
                # Coordinator dark (pre-takeover window): the casualty
                # stays visible — a down parity target to the probe
                # sweep, a stale one through its sticky status flag.
                pass

    def _send_parity_to(
        self, target: str, kind: str, payload: Any, size: int = 0
    ) -> tuple[str, dict] | None:
        """Ship one Δ (or batch) to one parity bucket, surviving faults.

        Returns ``None`` on success, or a deferred ``(kind, payload)``
        escalation report for :meth:`_fanout` to send once the whole
        fan-out completed (see there for why it must not go out early).

        A failed parity site is reported to the coordinator, which
        rebuilds it onto a spare under the same logical address.  The
        rebuild encodes from the group's *current* data — every data
        server mutates its store before shipping the Δ-record — so the
        recovered parity already reflects this mutation and the Δ must
        NOT be re-sent (the sequence numbers would skip it anyway).

        Transient delivery faults are retried under the retry policy;
        the sequence numbers make a resend after a lost *reply* (where
        the Δ did apply) a harmless duplicate.  In ``parity_ack`` mode
        the Δ travels as a call, so even silent drops become visible
        faults; with plain sends only ``fail`` outcomes are retryable —
        a silent drop surfaces later as a gap at the parity bucket.
        Exhausted retries are escalated like a crash: the coordinator
        rebuilds the parity bucket from data, which is always safe.
        """
        policy = self.retry_policy
        for attempt in range(policy.attempts):
            try:
                if self.parity_ack:
                    self.call(target, kind, payload, size=size)
                else:
                    self.send(target, kind, payload, size=size)
                return None
            except DeliveryFault as fault:
                if fault.stage == "reply":
                    return None  # the Δ was applied; only the ack was lost
                if attempt + 1 < policy.attempts:
                    net = self._net()
                    if net.tracer is not None:
                        net.tracer.emit(
                            "op.retry", op=kind, node=target,
                            attempt=attempt + 1,
                        )
                    if net.metrics is not None:
                        net.metrics.counter(
                            "retry.attempts",
                            "client+parity retransmissions",
                        ).inc()
                    # Salt per channel: under jitter, group members that
                    # got shed by the same parity bucket back off apart
                    # instead of re-converging on it in lockstep.
                    net.advance(policy.delay(
                        attempt,
                        zlib.crc32(f"{self.node_id}->{target}".encode()),
                    ))
            except NodeUnavailable as failure:
                return (
                    "report.unavailable",
                    {"node": failure.node_id, "kind": None, "op": None},
                )
        # Budget exhausted against a node that still answers pings: its
        # content can no longer be trusted to include this Δ.  Report it
        # stale — the coordinator rebuilds it from the group's data,
        # which (local mutation preceding the send) includes this op.
        return ("report.stale", {"node": target})

    # ------------------------------------------------------------------
    # record mutation primitives (called by the accepted-op handlers)
    # ------------------------------------------------------------------
    def apply_insert(self, key: int, value: bytes) -> None:
        if key in self.bucket:
            self.apply_update(key, value)
            return
        rank = self._take_rank()
        self._assign_rank(key, rank)
        self.bucket.put(key, value)
        self._send_parity(self._parity_op("insert", key, rank, value, len(value)))

    def apply_update(self, key: int, value: bytes) -> None:
        if key not in self.bucket:
            self.apply_insert(key, value)
            return
        old = self.bucket.get(key)
        self.bucket.put(key, value)
        self._send_parity(
            self._parity_op(
                "update", key, self.ranks[key], delta_payload(old, value), len(value)
            )
        )

    def apply_delete(self, key: int) -> None:
        if key not in self.bucket:
            return
        payload = self.bucket.delete(key)
        rank = self._unassign_rank(key)
        self._send_parity(self._parity_op("delete", key, rank, payload, 0))
        self._release_rank(rank)
        self._send_parity_batch(self._compact())

    # ------------------------------------------------------------------
    # batched key operations: Δ-coalescing and vectorized runs
    # ------------------------------------------------------------------
    def _batch_context(self, ops: list[dict]):
        return self._coalesce()

    @contextmanager
    def _coalesce(self):
        """Hold Δ-records for the duration of one client sub-batch.

        Re-entrant: a split triggered mid-batch re-enters through its
        own structural parity batch, which simply joins the queue.  At
        depth 0 the whole queue ships as ONE ``parity.batch`` per parity
        target — the coalesced-Δ message the 2D bulk fold feeds on.
        """
        self._coalesce_depth += 1
        try:
            yield
        finally:
            self._coalesce_depth -= 1
            if self._coalesce_depth == 0:
                self.flush_parity()

    def _apply_batch_ops(self, ops: list[dict]) -> list[dict]:
        """Vectorize maximal eligible runs of same-kind mutations;
        everything else takes the scalar per-op path unchanged."""
        results: list[dict] = []
        i = 0
        while i < len(ops):
            run = self._bulk_run(ops, i)
            if run > 1:
                chunk = ops[i:i + run]
                if chunk[0]["op"] == "insert":
                    results.extend(self._apply_bulk_insert(chunk))
                else:
                    results.extend(self._apply_bulk_update(chunk))
                i += run
            else:
                results.append(self._apply_batch_op(ops[i]))
                i += 1
        return results

    def _bulk_run(self, ops: list[dict], start: int) -> int:
        """Length of the vectorizable run at ``start`` (1 = scalar).

        A run must be same-kind insert-or-update, bytes payloads,
        pairwise-distinct keys, every key accepted by A2, inserts all
        absent (and fitting under capacity, so no overflow report can
        fire mid-run) and updates all present (with no overflow report
        pending, which only a size change or growth could owe) — the
        conditions under which the vectorized apply is step-for-step
        equivalent to the scalar sequence.
        """
        kind = ops[start]["op"]
        if kind not in ("insert", "update"):
            return 1
        seen: set[int] = set()
        run = start
        while run < len(ops):
            op = ops[run]
            key = op["key"]
            if (
                op["op"] != kind
                or key in seen
                or not isinstance(op.get("value"), (bytes, bytearray))
                or self._verify(key) is not None
                or (key in self.bucket) != (kind == "update")
            ):
                break
            seen.add(key)
            run += 1
        count = run - start
        if kind == "insert":
            # Stop the run at capacity: the tail goes per-op, where the
            # overflow reports (and any split they trigger) fire exactly
            # when the scalar sequence would fire them.
            count = min(count, self.bucket.capacity - len(self.bucket))
        elif self.bucket.overflowing and len(self.bucket) > self._last_reported_size:
            return 1  # an overflow report is due; per-op path sends it
        return count if count >= 2 else 1

    def _apply_bulk_insert(self, ops: list[dict]) -> list[dict]:
        """Insert a run in one pass: ranks taken together, one store
        write per record, Δs queued in stream order."""
        ranks = self._take_ranks(len(ops))
        keys: list[int] = []
        values: list[bytes] = []
        lengths: list[int] = []
        put = self.bucket.put
        assign = self._assign_rank
        for op, rank in zip(ops, ranks):
            key, value = op["key"], op["value"]
            assign(key, rank)
            put(key, value)
            keys.append(key)
            values.append(value)
            lengths.append(len(value))
        self._send_parity_block(
            self._parity_block("insert", keys, ranks, values, lengths)
        )
        # The run fits under capacity, so this is the scalar sequence's
        # final not-overflowing marker reset, not a report.
        self._report_overflow_if_needed()
        return ["applied"] * len(ops)

    def _apply_bulk_update(self, ops: list[dict]) -> list[dict]:
        """Update a run with one stacked-XOR delta kernel.

        Old and new payloads are stacked into two (run × symbols)
        matrices, XORed in one pass, and converted back to bytes in one
        call; each op's Δ is its row trimmed to max(len(old), len(new))
        — byte-identical to scalar ``delta_payload``, which zero-extends
        the shorter operand to exactly that length.
        """
        keys = [op["key"] for op in ops]
        news = [op["value"] for op in ops]
        olds = [self.bucket.get(k) for k in keys]
        lengths = [max(len(o), len(n)) for o, n in zip(olds, news)]
        longest = max(lengths)
        if longest:
            sym_len = self.field.symbol_length_for_bytes(longest)
            stacked_old = self.field.stack_payloads(olds, sym_len)
            stacked_new = self.field.stack_payloads(news, sym_len)
            delta = np.bitwise_xor(stacked_old, stacked_new)
            blob = self.field.bytes_from_symbols(delta.reshape(-1))
            row_bytes = len(blob) // len(ops)
        else:
            blob, row_bytes = b"", 0
        put = self.bucket.put
        ranks = [self.ranks[key] for key in keys]
        deltas: list[bytes] = []
        new_lengths: list[int] = []
        for idx, (key, new) in enumerate(zip(keys, news)):
            put(key, new)
            start = idx * row_bytes
            deltas.append(blob[start:start + lengths[idx]])
            new_lengths.append(len(new))
        self._send_parity_block(
            self._parity_block("update", keys, ranks, deltas, new_lengths)
        )
        # No size change and no report pending (run precondition), so
        # this only performs the scalar sequence's marker bookkeeping.
        self._report_overflow_if_needed()
        return ["applied"] * len(ops)

    # ------------------------------------------------------------------
    # splits: group membership follows the record
    # ------------------------------------------------------------------
    def handle_split(self, message: Message) -> Any:
        target = message.payload["target"]
        stay, move = addressing.split_records(
            list(self.bucket.records.items()),
            lambda item: item[0],
            self.number,
            self.level,
            self.n0,
        )
        # Remove the movers from this group's record groups (batched).
        # Local state mutates *before* the parity send: a parity spare
        # rebuilt mid-send encodes from current data, so the in-flight
        # batch must already be reflected locally (see _send_parity_to).
        delete_ops = []
        for key, payload in move:
            rank = self._unassign_rank(key)
            delete_ops.append(self._parity_op("delete", key, rank, payload, 0))
            self._release_rank(rank)
        delete_ops.extend(self._compact())
        self.bucket.records = dict(stay)
        self.bucket.level += 1
        self._last_reported_size = -1
        if self._wal is not None:
            self._log_entry({"ctl": "level", "level": self.bucket.level})
        self._send_parity_batch(delete_ops)
        self.send(
            data_node(self.file_id, target),
            "records.bulk",
            {"records": move, "source": self.number},
        )
        self._report_overflow_if_needed()
        return {"moved": len(move), "kept": len(stay)}

    def handle_records_bulk(self, message: Message) -> None:
        insert_ops = []
        for key, payload in message.payload["records"]:
            rank = self._take_rank()
            self._assign_rank(key, rank)
            self.bucket.put(key, payload)
            insert_ops.append(
                self._parity_op("insert", key, rank, payload, len(payload))
            )
        self._send_parity_batch(insert_ops)
        self._report_overflow_if_needed()

    def handle_merge(self, message: Message) -> Any:
        """This (last) bucket dissolves: remove every record from this
        group's record groups (batched parity deletes), then ship the
        records to the absorbing bucket, which re-groups them there.

        If this bucket was its group's only member, the coordinator
        retires the group's parity buckets afterwards — the batch then
        merely zeroes records that are about to be discarded, so it is
        skipped (the coordinator tells us via ``retiring``).
        """
        into = message.payload["into"]
        records = list(self.bucket.records.items())
        if not message.payload.get("retiring"):
            delete_ops = [
                self._parity_op("delete", key, self.ranks[key], payload, 0)
                for key, payload in records
            ]
            self.ranks.clear()
            self._rank_to_key.clear()
            self._free_ranks.clear()
            self._rank_counter = 0
            self.bucket.records = {}
            self._send_parity_batch(delete_ops)
        else:
            self.ranks.clear()
            self._rank_to_key.clear()
            self.bucket.records = {}
        if self._wal is not None:
            self._log_entry({"ctl": "wipe"})
        self.send(
            data_node(self.file_id, into),
            "records.bulk",
            {"records": records, "source": self.number},
        )
        return {"moved": len(records)}

    def receive_moved_record(self, key: int, value: bytes) -> None:
        # Single-record arrival outside a bulk (not used by RS splits,
        # but kept consistent for subclasses / tests).
        rank = self._take_rank()
        self._assign_rank(key, rank)
        self.bucket.put(key, value)
        self._send_parity(self._parity_op("insert", key, rank, value, len(value)))

    # ------------------------------------------------------------------
    # configuration & recovery support
    # ------------------------------------------------------------------
    def handle_config_parity(self, message: Message) -> None:
        """Coordinator raised this group's availability level."""
        self.parity_targets = list(message.payload["targets"])

    def handle_parity_flush(self, message: Message) -> dict:
        """Explicit flush command (coordinator probe / recovery prep)."""
        return {"flushed": self.flush_parity()}

    def handle_signature_dump(self, message: Message) -> dict:
        """Algebraic signatures of every record, keyed by rank.

        Constant bytes per record regardless of payload size — the
        audit's whole advantage over shipping payloads.  Flushes lazy
        Δs first so parity and data describe the same state.
        """
        from repro.gf.signatures import signature_vector

        self.flush_parity()
        count = message.payload.get("count", 2)
        return {
            "position": self.position,
            "ranks": {
                self.ranks[key]: signature_vector(self.field, payload, count)
                for key, payload in self.bucket.records.items()
            },
        }

    def handle_record_fetch(self, message: Message) -> dict:
        """Direct fetch by key (record recovery addresses buckets
        explicitly from the parity directory — no A2 involved).

        Flushes first: the decode combining this payload with parity
        records needs the parity to be current with it.
        """
        self.flush_parity()
        key = message.payload["key"]
        if key in self.bucket:
            return {"found": True, "payload": self.bucket.get(key)}
        return {"found": False, "payload": None}

    def handle_bucket_dump(self, message: Message) -> dict:
        """Everything recovery needs to treat this bucket as a survivor.

        Flushes queued Δs first so the dump and the group's parity
        describe the same state (lazy mode would otherwise feed the
        decoder a survivor ahead of its parity).
        """
        self.flush_parity()
        return {
            "bucket": self.number,
            "position": self.position,
            "level": self.level,
            "counter": self._rank_counter,
            "free_ranks": list(self._free_ranks),
            "parity_seq": self._parity_seq,
            "records": [
                (key, self.ranks[key], payload)
                for key, payload in self.bucket.records.items()
            ],
        }

    def handle_bucket_load(self, message: Message) -> None:
        """Bulk-load recovered content into a fresh (spare) data bucket."""
        payload = message.payload
        self.bucket.records = {}
        self.ranks = {}
        self._rank_to_key = {}
        for key, rank, value in payload["records"]:
            self.bucket.put(key, value)
            self._assign_rank(key, rank)
        self._rank_counter = payload["counter"]
        self._free_ranks = list(payload["free_ranks"])
        heapq.heapify(self._free_ranks)
        self.bucket.level = payload["level"]
        # Resume the Δ stream where the lost bucket left it, so the
        # surviving parity buckets' channel expectations stay aligned.
        self._parity_seq = payload.get("parity_seq", 0)
        if self._wal is not None:
            # A rebuilt (or snapshot-restored) image is the new durable
            # baseline; whatever the disk held belonged to another life.
            self.checkpoint_now()

    def handle_status(self, message: Message) -> dict:
        status = super().handle_status(message)
        status.update(group=self.group, position=self.position,
                      counter=self._rank_counter)
        if self._wal is not None:
            status.update(fenced=self.fenced, epoch=self.epoch)
        return status

    def handle_level_set(self, message: Message) -> Any:
        result = super().handle_level_set(message)
        if self._wal is not None:
            self._log_entry({"ctl": "level", "level": self.bucket.level})
        return result

    # ------------------------------------------------------------------
    # durable storage plane: WAL, checkpoints, restart and catch-up
    # ------------------------------------------------------------------
    def enable_durability(self, config) -> None:
        """Attach the simulated disk and WAL (``config.durability``).

        Ends with a baseline checkpoint: recovery then always finds a
        durable image of the bucket's *birth* state, so a crash before
        the first periodic checkpoint still replays cleanly.
        """
        from repro.sim.rng import DEFAULT_SEED

        self._disk = SimDisk(
            self.node_id,
            rng=disk_rng(DEFAULT_SEED, self.node_id),
            profile=self._disk_profile,
        )
        self._wal = BucketLog(self._disk, fsync_interval=config.wal_fsync_interval)
        self._ckpt_interval = config.durability_checkpoint_interval
        self._delta_history = deque(maxlen=config.delta_log_capacity)
        self.checkpoint_now()

    def _disk_profile(self) -> dict:
        """Current disk fault profile from the network's fault plane."""
        net = self.network
        if net is None or net.fault_plane is None:
            return {}
        return net.fault_plane.disk_profile(self.node_id, net.now)

    def _log_entry(self, entry: dict) -> None:
        """One WAL frame (mutation op/block or a ``ctl`` record).

        Sequenced entries also join the in-RAM history ring that serves
        a restarted parity bucket's catch-up ask.  Disk errors are
        fail-stop (:meth:`_fail_stop`): a bucket that cannot log must
        not keep mutating, or its disk diverges from its acked state.
        """
        try:
            self._wal.append(entry)
        except DiskError:
            self._fail_stop()
        if "ctl" not in entry:
            self._delta_history.append(entry)
        self._appends_since_ckpt += 1
        if self._appends_since_ckpt >= self._ckpt_interval:
            self.checkpoint_now()

    def _fail_stop(self) -> None:
        """Crash the node rather than run past a disk write it lost."""
        net = self.network
        if net is not None and net.is_available(self.node_id):
            net.fail(self.node_id)
        raise NodeUnavailable(self.node_id)

    def checkpoint_now(self) -> None:
        """Write a full-state checkpoint and truncate the WAL.

        The lazy parity queue is part of the image: those Δs were acked
        locally but may never have left, and the restart resend path
        (:meth:`handle_catchup_load`) needs them back.
        """
        state = {
            "kind": "data",
            "epoch": self.epoch,
            "level": self.bucket.level,
            "counter": self._rank_counter,
            "free": sorted(self._free_ranks),
            "records": [
                (key, self.ranks[key], payload)
                for key, payload in self.bucket.records.items()
            ],
            "parity_seq": self._parity_seq,
            "queue": list(self._parity_queue),
        }
        try:
            self._wal.checkpoint(state)
        except DiskError:
            self._fail_stop()
        self._appends_since_ckpt = 0
        net = self.network
        if net is not None and net.tracer is not None:
            net.tracer.emit(
                "disk.checkpoint", node=self.node_id, lsn=self._wal.lsn,
                records=len(self.bucket.records),
            )
        if net is not None and net.metrics is not None:
            net.metrics.counter(
                "disk.checkpoints", "bucket checkpoints written"
            ).inc()

    # -- restart-with-delta-catch-up -----------------------------------
    def on_restored(self) -> None:
        """Network hook: this node just came back from a crash.

        RAM-only servers (durability off) keep the legacy silent-rebirth
        semantics — state intact, nobody told — which the pre-durability
        chaos suites pin byte-for-byte: the hook returns immediately.
        """
        if self._wal is None or self._restarting:
            return
        self._restarting = True
        try:
            self._restart()
        except NodeUnavailable:
            # A disk fail-stop (or a coordinator verdict) put the node
            # back down mid-restart; the probe sweep will rebuild it.
            pass
        finally:
            self._restarting = False

    def _restart(self) -> None:
        """Replay the durable prefix, fence, and rejoin the file.

        The crash is applied to the disk *here*: a failed node runs no
        code in the simulation, so dropping the unsynced tail (and any
        torn-write / bit-rot rule) at restore time is equivalent to
        dropping it at crash time.
        """
        net = self._net()
        self._disk.crash()
        state, tail, clean = self._wal.recover()
        # Everything volatile is lost with the process.
        self._parity_queue = []
        self._coalesce_depth = 0
        self.bucket.records = {}
        self.ranks = {}
        self._rank_to_key = {}
        self._free_ranks = []
        self._rank_counter = 0
        self._parity_seq = 0
        self._delta_history.clear()
        self._appends_since_ckpt = 0
        if state is None or state.get("kind") != "data":
            # No readable checkpoint (torn or rotted): the tail has no
            # base to replay onto — everything on disk is suspect.
            clean, tail = False, []
            self.epoch = 0
        else:
            self.epoch = state["epoch"]
            self.bucket.level = state["level"]
            self._rank_counter = state["counter"]
            self._free_ranks = list(state["free"])
            heapq.heapify(self._free_ranks)
            for key, rank, payload in state["records"]:
                self.bucket.put(key, payload)
                self._assign_rank(key, rank)
            self._parity_seq = state["parity_seq"]
            self._parity_queue = [dict(op) for op in state["queue"]]
            for entry in tail:
                self._replay_entry(entry)
                if "ctl" not in entry:
                    self._delta_history.append(entry)
        self.fenced = True
        if net.tracer is not None:
            net.tracer.emit(
                "bucket.restart", node=self.node_id, kind="data",
                bucket=self.number, seq=self._parity_seq, clean=clean,
                replayed=len(tail),
            )
        if net.metrics is not None:
            net.metrics.counter("disk.restarts", "bucket restart replays").inc()
        self._rejoin_file(clean)

    def _rejoin_file(self, clean: bool) -> None:
        """Report the restart; the coordinator catches us up or rebuilds.

        The verdict itself travels out-of-band: a ``catchup.load``
        arriving mid-call unfences us, a rebuild replaces us under our
        own node id.  The reply is informational, so a lost reply after
        the coordinator acted changes nothing.
        """
        net = self._net()
        payload = {
            "node": self.node_id,
            "kind": "data",
            "bucket": self.number,
            "group": self.group,
            "epoch": self.epoch,
            "seq": self._parity_seq,
            "clean": clean,
        }
        policy = self.retry_policy
        for attempt in range(policy.attempts):
            try:
                self.call(self._coordinator(), "rejoin", payload)
                return
            except DeliveryFault as fault:
                if fault.stage == "reply":
                    return  # the coordinator acted; only the ack was lost
            except (NodeUnavailable, UnknownNode):
                pass  # coordinator dark (pre-takeover window)
            if attempt + 1 < policy.attempts:
                net.advance(policy.delay(
                    attempt, zlib.crc32(f"{self.node_id}->rejoin".encode()),
                ))
        # Could not reach the coordinator: stay down — a fenced bucket
        # nobody knows about is indistinguishable from a dead one, and
        # the probe sweep will find and rebuild it.  Guard on identity:
        # if a rebuild already replaced us under this id, failing the id
        # would kill the healthy replacement.
        if net.nodes.get(self.node_id) is self:
            net.fail(self.node_id)
        raise NodeUnavailable(self.node_id)

    # -- WAL replay ----------------------------------------------------
    def _replay_entry(self, entry: dict) -> None:
        if "ctl" in entry:
            ctl = entry["ctl"]
            if ctl == "level":
                self.bucket.level = entry["level"]
            elif ctl == "counter":
                # compaction epilogue: free list drained, counter shrunk
                self._free_ranks = []
                self._rank_counter = entry["counter"]
            elif ctl == "wipe":
                self.bucket.records = {}
                self.ranks = {}
                self._rank_to_key = {}
                self._free_ranks = []
                self._rank_counter = 0
            return
        if "block" in entry:
            for key, rank, delta, length in zip(
                entry["keys"], entry["ranks"], entry["deltas"], entry["lengths"]
            ):
                self._replay_one(entry["block"], key, rank, delta, length)
            return
        self._replay_one(
            entry["op"], entry["key"], entry["rank"], entry["delta"],
            entry["length"],
        )

    def _replay_one(
        self, action: str, key: int, rank: int, delta: bytes, length: int
    ) -> None:
        """Apply one logged mutation to the store.

        Inserts log the payload verbatim; updates log the XOR Δ, so the
        new value is ``old ⊕ Δ`` trimmed to the logged length (exactly
        how the parity channel reconstructs it).
        """
        if action == "insert":
            self._adopt_rank(rank)
            self._assign_rank(key, rank)
            self.bucket.put(key, delta)
        elif action == "update":
            old = self.bucket.get(key)
            self.bucket.put(key, delta_payload(old, delta)[:length])
        elif key in self.bucket:  # delete
            self.bucket.delete(key)
            self._release_rank(self._unassign_rank(key))

    def _adopt_rank(self, rank: int) -> None:
        """Claim a *specific* rank during replay or catch-up: pull it
        from the free heap if present, else extend the counter to cover
        it (ranks skipped on the way up become free, exactly as the
        live allocation path left them)."""
        if rank <= self._rank_counter:
            if rank in self._free_ranks:
                self._free_ranks.remove(rank)
                heapq.heapify(self._free_ranks)
        else:
            while self._rank_counter < rank:
                self._rank_counter += 1
                if self._rank_counter < rank:
                    heapq.heappush(self._free_ranks, self._rank_counter)

    @staticmethod
    def _entry_seq_range(entry: dict) -> tuple[int, int]:
        """Inclusive Δ-sequence span of one logged entry."""
        if "block" in entry:
            return entry["seq0"], entry["seq0"] + len(entry["keys"]) - 1
        return entry["seq"], entry["seq"]

    # -- serving catch-up ----------------------------------------------
    def handle_wal_tail(self, message: Message) -> dict:
        """A restarted parity bucket asks for the Δs it missed.

        Returns every entry with a sequence number above ``after`` from
        the in-RAM history ring; ``covered`` is False when the ring no
        longer reaches back that far (checkpoints retire old WAL frames)
        — the asker must then fall back to a full rebuild.
        """
        after = message.payload["after"]
        live = self._parity_seq
        ops: list[dict] = []
        next_needed = after + 1
        covered = True
        for entry in self._delta_history or ():
            lo, hi = self._entry_seq_range(entry)
            if hi < next_needed:
                continue
            if lo > next_needed:
                covered = False
                break
            ops.append(entry)
            next_needed = hi + 1
        covered = covered and next_needed > live
        return {"covered": covered, "live": live, "ops": ops}

    # -- receiving catch-up --------------------------------------------
    def handle_catchup_load(self, message: Message) -> dict:
        """Apply the coordinator's delta catch-up verdict and unfence.

        ``set`` holds the *final* state of every key that changed while
        we were down (the coordinator already resolved per-key winners);
        ``delete`` lists keys whose final state is absence.  Neither
        fans out Δs — the live parity buckets already reflect them.

        ``resend_after`` (when present) means some parity bucket lags
        our own durable prefix (Δs we logged but never shipped — the
        lazy-queue vulnerability window the WAL exists to close): we
        re-fan-out our tail above it, in sequence order, merged from the
        restored queue and the history ring.  Per-channel sequence
        numbers make the copies other parities already hold harmless
        duplicates.  The reply's ``floor`` is the highest sequence the
        resend could *not* reach back past; the coordinator rebuilds any
        parity bucket still gapped below it.
        """
        payload = message.payload
        disk_seq = self._parity_seq
        deletes = payload.get("delete", [])
        items = payload.get("set", [])
        for key in deletes:
            if key in self.bucket:
                self.bucket.delete(key)
                self._release_rank(self._unassign_rank(key))
        # Two passes: release every stale rank first, then adopt the
        # final ones — a catch-up that swaps two keys' ranks would
        # otherwise collide mid-loop.
        for key, rank, value in items:
            if key in self.ranks:
                self._release_rank(self._unassign_rank(key))
        for key, rank, value in items:
            self._adopt_rank(rank)
            self._assign_rank(key, rank)
            self.bucket.put(key, value)
        self._parity_seq = payload["parity_seq"]
        self.fenced = False
        # Resend our unshipped tail to lagging parity channels.
        floor = disk_seq
        resend_after = payload.get("resend_after")
        if resend_after is not None and resend_after < disk_seq:
            pool: dict[int, tuple[int, dict]] = {}
            for entry in list(self._parity_queue) + list(self._delta_history):
                lo, hi = self._entry_seq_range(entry)
                if hi > resend_after and lo <= disk_seq:
                    pool[lo] = (hi, entry)
            resend: list[dict] = []
            for lo in sorted(pool, reverse=True):
                hi, entry = pool[lo]
                if hi != floor:
                    break  # gap: entries below were retired by checkpoints
                resend.append(entry)
                floor = lo - 1
            floor = max(floor, resend_after)
            resend.reverse()
            self._parity_queue = []
            if resend:
                self._fanout("parity.batch", {"ops": resend},
                             size=self._parity_batch_size_of(resend))
        else:
            # Every parity channel is at (or past) our durable prefix:
            # the restored queue is all duplicates.
            self._parity_queue = []
        net = self._net()
        if net.tracer is not None:
            net.tracer.emit(
                "catchup.data", node=self.node_id, bucket=self.number,
                set=len(items), deleted=len(deletes), seq=self._parity_seq,
            )
        if net.metrics is not None:
            net.metrics.counter(
                "catchup.records", "records shipped by delta catch-up"
            ).inc(len(items) + len(deletes))
        self.checkpoint_now()
        return {"floor": floor}
