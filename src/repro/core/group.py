"""Bucket-group geometry and node naming.

Data bucket a belongs to bucket group g = a // m at position a % m; the
group's parity buckets live at dedicated nodes named ``<file>.p<g>.<i>``.
Unlike LH*g's separate LH* parity *file*, LH*RS attaches parity buckets
to groups directly, so a record's parity sites are computable from its
bucket number alone — no second hash file to address.
"""

from __future__ import annotations


def group_of(bucket: int, m: int) -> int:
    """Bucket group number of data bucket ``bucket``."""
    if bucket < 0:
        raise ValueError("bucket numbers are non-negative")
    return bucket // m


def position_of(bucket: int, m: int) -> int:
    """Position (generator column) of the bucket within its group."""
    if bucket < 0:
        raise ValueError("bucket numbers are non-negative")
    return bucket % m


def group_buckets(group: int, m: int, total_buckets: int | None = None) -> list[int]:
    """Data bucket numbers of a group (clipped to the file's extent)."""
    if group < 0:
        raise ValueError("group numbers are non-negative")
    first = group * m
    last = first + m
    if total_buckets is not None:
        last = min(last, total_buckets)
    return list(range(first, last))


def group_count(total_buckets: int, m: int) -> int:
    """Number of (possibly partial) groups in an M-bucket file."""
    return (total_buckets + m - 1) // m if total_buckets else 0


def parity_node(file_id: str, group: int, index: int) -> str:
    """Node id of parity bucket ``index`` of ``group``."""
    return f"{file_id}.p{group}.{index}"


def data_node(file_id: str, bucket: int) -> str:
    """Node id of data bucket ``bucket``."""
    return f"{file_id}.d{bucket}"
