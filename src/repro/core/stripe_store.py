"""Contiguous stripe storage for parity buckets.

A parity bucket holds one parity symbol array per record group (rank).
Storing each as its own numpy array costs one allocation per record and
forces every bulk operation — dumps, signature scans, recovery decodes —
to walk Python objects.  :class:`StripeStore` packs them all into one
``(rows x width)`` symbol matrix with a rank→row map: each rank's parity
lives in a row slice, zero-padded to the store width (the paper's
padding rule makes the padding semantically free).

The matrix grows geometrically in both dimensions.  Growth reallocates
the matrix, which invalidates previously handed-out row views, so
callers that cache views (the parity server binds ``record.symbols`` to
row views) must refresh them when :attr:`generation` changes —
:meth:`ensure` returns ``True`` exactly when that happened.
"""

from __future__ import annotations

import numpy as np

from repro.gf.field import GF


class StripeStore:
    """One contiguous (rows x width) symbol matrix, addressed by rank."""

    __slots__ = ("field", "matrix", "generation", "_row_of", "_length", "_free")

    def __init__(self, field: GF, rows: int = 0, width: int = 0):
        if field.width < 8:
            # Sub-byte symbols would make row slices non-byte-aligned in
            # row_bytes; the file configs only use GF(2^8)/GF(2^16).
            raise ValueError("StripeStore requires a whole-byte symbol field")
        self.field = field
        self.matrix = np.zeros((rows, width), dtype=field.symbol_dtype)
        #: bumped whenever the matrix is reallocated (views invalidated)
        self.generation = 0
        self._row_of: dict[int, int] = {}
        self._length: dict[int, int] = {}
        self._free: list[int] = list(range(rows - 1, -1, -1))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._row_of)

    def __contains__(self, rank: int) -> bool:
        return rank in self._row_of

    def ranks(self) -> list[int]:
        """Stored ranks in insertion-independent sorted order."""
        return sorted(self._row_of)

    def length_of(self, rank: int) -> int:
        """Logical symbol length of one rank's stripe."""
        return self._length[rank]

    @property
    def width(self) -> int:
        return int(self.matrix.shape[1])

    # ------------------------------------------------------------------
    def view(self, rank: int) -> np.ndarray:
        """Logical-length view of one rank's row (writes hit the store)."""
        return self.matrix[self._row_of[rank], : self._length[rank]]

    def ensure(self, rank: int, length: int) -> bool:
        """Make ``rank`` exist with at least ``length`` logical symbols.

        Returns ``True`` when the matrix was reallocated (all previously
        obtained views are stale and must be re-fetched via :meth:`view`).
        """
        grew = False
        if length > self.width:
            new_width = max(8, self.width)
            while new_width < length:
                new_width *= 2
            fresh = np.zeros(
                (self.matrix.shape[0], new_width), dtype=self.field.symbol_dtype
            )
            fresh[:, : self.width] = self.matrix
            self.matrix = fresh
            self.generation += 1
            grew = True
        if rank not in self._row_of:
            if not self._free:
                old_rows = self.matrix.shape[0]
                new_rows = max(8, 2 * old_rows)
                fresh = np.zeros(
                    (new_rows, self.width), dtype=self.field.symbol_dtype
                )
                fresh[:old_rows] = self.matrix
                self.matrix = fresh
                self.generation += 1
                grew = True
                self._free = list(range(new_rows - 1, old_rows - 1, -1))
            self._row_of[rank] = self._free.pop()
            self._length[rank] = 0
        if length > self._length[rank]:
            self._length[rank] = length
        return grew

    def scatter_xor(
        self, ranks: list[int], lengths: list[int], rows: np.ndarray
    ) -> bool:
        """Fold one pre-scaled Δ row per rank in a single scatter.

        ``rows`` is a ``(len(ranks) x W)`` matrix whose row *i* is
        XOR-folded into ``ranks[i]``'s stripe; ``lengths[i]`` is that
        row's logical symbol length (rows are zero-padded beyond it, so
        folding the full width is semantically the same as folding the
        logical prefix).  Ranks must be distinct — duplicate ranks in a
        fancy-index scatter would silently drop all but one fold.

        Equivalent to ``ensure`` + ``view`` + per-row XOR, with at most
        one reallocation for the whole batch.  Returns ``True`` when
        the matrix was reallocated (cached views are stale).
        """
        width = int(rows.shape[1])
        grew = False
        if width > self.width:
            new_width = max(8, self.width)
            while new_width < width:
                new_width *= 2
            fresh = np.zeros(
                (self.matrix.shape[0], new_width), dtype=self.field.symbol_dtype
            )
            fresh[:, : self.width] = self.matrix
            self.matrix = fresh
            self.generation += 1
            grew = True
        fresh_ranks = [r for r in ranks if r not in self._row_of]
        if len(fresh_ranks) > len(self._free):
            old_rows = self.matrix.shape[0]
            new_rows = max(8, 2 * old_rows)
            while new_rows - old_rows + len(self._free) < len(fresh_ranks):
                new_rows *= 2
            fresh = np.zeros(
                (new_rows, self.width), dtype=self.field.symbol_dtype
            )
            fresh[:old_rows] = self.matrix
            self.matrix = fresh
            self.generation += 1
            grew = True
            self._free.extend(range(new_rows - 1, old_rows - 1, -1))
        row_of, length_of = self._row_of, self._length
        for rank in fresh_ranks:
            row_of[rank] = self._free.pop()
            length_of[rank] = 0
        for rank, length in zip(ranks, lengths):
            if length > length_of[rank]:
                length_of[rank] = length
        targets = [row_of[rank] for rank in ranks]
        self.matrix[targets, :width] ^= rows
        return grew

    def release(self, rank: int) -> None:
        """Drop a rank; its row is zeroed and recycled."""
        row = self._row_of.pop(rank)
        self._length.pop(rank)
        self.matrix[row] = 0
        self._free.append(row)

    # ------------------------------------------------------------------
    # bulk views (what dumps and signature scans ride on)
    # ------------------------------------------------------------------
    def stacked(self) -> tuple[list[int], np.ndarray]:
        """``(ranks, matrix)`` with one full-width row per stored rank.

        The matrix is a single fancy-index gather — one allocation for
        the whole bucket, in rank order.
        """
        ranks = self.ranks()
        rows = [self._row_of[rank] for rank in ranks]
        return ranks, self.matrix[rows, :]

    def row_bytes(self) -> dict[int, bytes]:
        """Per-rank parity payloads rendered from one contiguous pass.

        The whole store is converted to bytes once; each rank's payload
        is then a cheap slice of that blob, trimmed to its logical
        (symbol-aligned) length.
        """
        ranks, matrix = self.stacked()
        if not ranks:
            return {}
        blob = self.field.bytes_from_symbols(matrix.reshape(-1))
        stride = self.width * matrix.dtype.itemsize
        out: dict[int, bytes] = {}
        for i, rank in enumerate(ranks):
            nbytes = self._length[rank] * matrix.dtype.itemsize
            out[rank] = blob[i * stride : i * stride + nbytes]
        return out

    def bulk_load(self, items: list[tuple[int, bytes]]) -> None:
        """Replace the store content with ``(rank, payload)`` pairs.

        Packs every payload in one :meth:`GF.stack_payloads` pass —
        the fast path for ``parity.load`` (spare installation, snapshot
        restore).
        """
        lengths = [self.field.symbol_length_for_bytes(len(p)) for _, p in items]
        width = max(lengths, default=0)
        packed = self.field.stack_payloads([p for _, p in items], width)
        if not packed.flags.writeable:
            # stack_payloads may alias the (immutable) joined input
            # bytes; the store matrix is written in place by later folds.
            packed = packed.copy()
        self.matrix = packed
        self.generation += 1
        self._row_of = {rank: i for i, (rank, _) in enumerate(items)}
        self._length = {
            rank: length for (rank, _), length in zip(items, lengths)
        }
        self._free = []

    def nbytes(self) -> int:
        """Logical payload bytes held (excludes padding and free rows)."""
        itemsize = self.matrix.dtype.itemsize
        return sum(self._length.values()) * itemsize

    def __repr__(self) -> str:
        return (
            f"StripeStore({len(self)} ranks, "
            f"{self.matrix.shape[0]}x{self.width} {self.matrix.dtype})"
        )
