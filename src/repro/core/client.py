"""The LH*RS client.

Identical to the LH* client in failure-free operation — the paper's
point: key searches and scans never touch parity, so the availability
machinery is free until something fails.  When the addressed bucket is
unavailable the client reports to the coordinator, which serves searches
through record recovery (degraded mode) and rebuilds the bucket.

Gray failures get the same treatment as death, one step earlier: with a
:class:`~repro.core.config.DeadlinePolicy` configured (and a
:class:`~repro.sim.network.ServiceModel` installed), every read carries
a latency budget.  A read that outruns the client's adaptive p99 is
*hedged* — the parity-reconstruction path serves the same record through
the coordinator, and the effective latency is whichever path would have
answered first.  A bucket that keeps blowing the budget trips a
per-bucket circuit breaker: reads short-circuit to the degraded path for
a cooldown instead of queueing behind a straggler.  The record comes
back identical either way (the property tests pin this); only the tail
latency differs.
"""

from __future__ import annotations

from collections import deque

from repro.core.config import DeadlinePolicy
from repro.obs.metrics import LATENCY_BUCKETS
from repro.sdds.client import Client, SearchOutcome
from repro.sim.network import DeliveryFault, NodeUnavailable, UnknownNode


class _Breaker:
    """Per-bucket circuit breaker over consecutive slow reads."""

    __slots__ = ("threshold", "cooldown", "slow_streak", "opened_at")

    def __init__(self, threshold: int, cooldown: float):
        self.threshold = threshold
        self.cooldown = cooldown
        self.slow_streak = 0
        self.opened_at: float | None = None

    def is_open(self, now: float) -> bool:
        return (
            self.opened_at is not None
            and now < self.opened_at + self.cooldown
        )

    def record(self, slow: bool, now: float) -> str | None:
        """Fold one read's verdict in; returns "opened"/"closed" on a
        state transition (the first read after a cooldown is the
        half-open probe: it either closes the breaker or re-opens it).
        """
        if slow:
            self.slow_streak += 1
            reopening = self.opened_at is not None
            if self.slow_streak >= self.threshold or reopening:
                self.opened_at = now
                self.slow_streak = 0
                return "opened"
            return None
        self.slow_streak = 0
        if self.opened_at is not None:
            self.opened_at = None
            return "closed"
        return None


class RSClient(Client):
    """An application's access point to one LH*RS file."""

    def __init__(self, *args, deadline: DeadlinePolicy | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        #: read-latency discipline (None = plain LH*RS behaviour)
        self.deadline = deadline
        #: recent effective read latencies, for the adaptive hedge delay
        self._latency_samples: deque[float] = deque(maxlen=256)
        self._breakers: dict[int, _Breaker] = {}
        self.hedged_reads = 0
        self.deadline_misses = 0
        self.degraded_fallbacks = 0
        #: effective latency of the most recent deadline-governed read.
        #: The simulator runs hedges after the primary instead of racing
        #: them, so wall virtual-time around ``search`` double-counts a
        #: hedged read; this is the client's own accounting (min of the
        #: two paths), the number the latency histogram records.
        self.last_read_latency: float | None = None

    # ------------------------------------------------------------------
    # failure reporting (hard failures: the bucket is dead)
    # ------------------------------------------------------------------
    def on_unavailable(self, kind: str, payload: dict,
                       failure: NodeUnavailable) -> None:
        """Report the failure to the coordinator, which completes the
        operation (degraded read or recover-then-deliver).

        Goes through the failover-aware send: when the coordinator died
        too, the whois pull path waits out the standby lease and the
        report lands on the new primary instead.

        A *fenced* refusal (the bucket restarted from disk and is
        mid-catch-up, not dead — durable storage plane) is forwarded
        with the distinction intact: the coordinator must not treat an
        epoch-fenced bucket as a fresh loss, and the trace stream keeps
        the two failure shapes apart.
        """
        # The marker is added only when set: report payloads and trace
        # attrs stay byte-identical to the pre-durability plane whenever
        # no fencing is involved.
        extra = {"fenced": True} if getattr(failure, "fenced", False) else {}
        net = self.network
        if net is not None and net.tracer is not None:
            net.tracer.emit(
                "client.unavailable",
                node=failure.node_id,
                op=kind,
                key=payload.get("key"),
                **extra,
            )
        self._coord_send(
            "report.unavailable",
            {"kind": kind, "op": payload, "node": failure.node_id, **extra},
        )

    # ------------------------------------------------------------------
    # batched operations: recovery and routing hooks
    # ------------------------------------------------------------------
    def _batch_unavailable(self, kind: str, op: dict, failure) -> bool:
        """A batch target died: report it (the coordinator recovers the
        bucket onto a spare under the same address), then retry the
        sub-batch — the LH*RS answer to a dead bucket, batched.  The
        report carries no op to complete: the retried sub-batch delivers
        the ops itself once the bucket is back."""
        net = self.network
        if net is not None and net.tracer is not None:
            net.tracer.emit(
                "client.unavailable",
                node=failure.node_id,
                op=kind,
                key=op.get("key"),
            )
        try:
            self._coord_send(
                "report.unavailable",
                {"kind": None, "op": None, "node": failure.node_id},
            )
        except (NodeUnavailable, UnknownNode, DeliveryFault):
            # Coordinator dark: fall back to the scalar path, whose
            # failover machinery (and failure surface) is authoritative.
            return False
        return True

    def _batch_route_scalar(self, kind: str, op: dict) -> bool:
        """Open-breaker searches skip the batch plane: the scalar
        :meth:`search` carries the hedge/degraded machinery a slow
        bucket needs, which an ``ops.batch`` call would bypass."""
        policy = self.deadline
        net = self.network
        if kind != "search" or policy is None or net is None or net.service is None:
            return False
        breaker = self._breakers.get(self.image.address(op["key"]))
        return breaker is not None and breaker.is_open(net.now)

    # ------------------------------------------------------------------
    # deadline/hedged reads (gray failures: the bucket is slow)
    # ------------------------------------------------------------------
    def _search_impl(self, key: int) -> SearchOutcome:
        # Overrides the scalar ladder *inside* the base class's
        # recording wrapper: whatever path serves the read — primary,
        # hedge or breaker short-circuit — the recorded outcome is the
        # one the application saw.
        policy = self.deadline
        net = self.network
        if policy is None or net is None or net.service is None:
            return super()._search_impl(key)

        bucket = self.image.address(key)
        breaker = self._breakers.get(bucket)
        if breaker is None:
            breaker = self._breakers[bucket] = _Breaker(
                policy.breaker_threshold, policy.breaker_cooldown
            )

        if breaker.is_open(net.now):
            start = net.virtual_time
            outcome = self._degraded_search(key)
            if outcome is not None:
                self._count("read.breaker.short_circuit")
                self._observe_read(net.virtual_time - start, policy)
                return outcome
            # The alternate path is dark too — fall through and take
            # our chances with the primary.

        start = net.virtual_time
        outcome = super()._search_impl(key)
        elapsed = net.virtual_time - start

        effective = elapsed
        hedged = False
        hedge_after = self._hedge_delay(policy)
        if policy.hedge and elapsed > hedge_after:
            hedge_start = net.virtual_time
            alternate = self._degraded_search(key)
            if alternate is not None:
                hedged = True
                self.hedged_reads += 1
                self._count("read.hedged")
                # The hedge would have fired hedge_after into the
                # primary read and raced it; the client sees whichever
                # path answers first.
                hedge_total = hedge_after + (net.virtual_time - hedge_start)
                if net.tracer is not None:
                    net.tracer.emit(
                        "op.hedged",
                        key=key,
                        bucket=bucket,
                        primary=round(elapsed, 3),
                        hedged=round(hedge_total, 3),
                    )
                if hedge_total < effective:
                    effective = hedge_total
                    outcome = alternate

        miss = self._observe_read(effective, policy)
        transition = breaker.record(miss or hedged, net.now)
        if transition == "opened":
            self._count("read.breaker.opened")
        if transition is not None and net.tracer is not None:
            net.tracer.emit(
                "breaker.open" if transition == "opened" else "breaker.close",
                bucket=bucket,
            )
        return outcome

    def _degraded_search(self, key: int) -> SearchOutcome | None:
        """The alternate read path: parity reconstruction through the
        coordinator, exactly as if the bucket were dead.  Returns None
        when the coordinator cannot serve it (no parity, coordinator
        dark) — the caller falls back to the primary's answer."""
        try:
            reply = self.call(
                f"{self.file_id}.coord", "read.degraded", {"key": key}
            )
        except (NodeUnavailable, UnknownNode, DeliveryFault):
            return None
        if not isinstance(reply, dict) or not reply.get("served"):
            return None
        self.degraded_fallbacks += 1
        return SearchOutcome(
            key=key, found=reply["found"], value=reply["value"]
        )

    def _hedge_delay(self, policy: DeadlinePolicy) -> float:
        """Adaptive hedge trigger: the configured quantile of this
        client's recent reads (half the deadline until warmed up).

        Clamped to half the deadline from above: past that point a
        hedge could no longer finish inside the budget, and an
        unclamped quantile chases its own tail — hedged reads inflate
        the sample quantile, which delays the next hedge further.
        """
        samples = self._latency_samples
        if len(samples) < policy.hedge_min_samples:
            return policy.deadline / 2.0
        ordered = sorted(samples)
        index = min(
            len(ordered) - 1, int(policy.hedge_quantile * len(ordered))
        )
        return min(ordered[index], policy.deadline / 2.0)

    def _observe_read(self, effective: float, policy: DeadlinePolicy) -> bool:
        """Record one read's effective latency; True = deadline miss."""
        self._latency_samples.append(effective)
        self.last_read_latency = effective
        net = self.network
        if net is not None and net.metrics is not None:
            net.metrics.histogram(
                "op.read.latency",
                LATENCY_BUCKETS,
                "end-to-end read latency (virtual time)",
            ).observe(effective)
        miss = effective > policy.deadline
        if miss:
            self.deadline_misses += 1
            self._count("read.deadline_miss")
            if net is not None and net.tracer is not None:
                net.tracer.emit(
                    "op.deadline_miss",
                    latency=round(effective, 3),
                    budget=policy.deadline,
                )
        return miss

    def _count(self, name: str) -> None:
        net = self.network
        if net is not None and net.metrics is not None:
            net.metrics.counter(name).inc()
