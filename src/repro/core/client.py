"""The LH*RS client.

Identical to the LH* client in failure-free operation — the paper's
point: key searches and scans never touch parity, so the availability
machinery is free until something fails.  When the addressed bucket is
unavailable the client reports to the coordinator, which serves searches
through record recovery (degraded mode) and rebuilds the bucket.
"""

from __future__ import annotations

from repro.sdds.client import Client
from repro.sim.network import NodeUnavailable


class RSClient(Client):
    """An application's access point to one LH*RS file."""

    def on_unavailable(self, kind: str, payload: dict,
                       failure: NodeUnavailable) -> None:
        """Report the failure to the coordinator, which completes the
        operation (degraded read or recover-then-deliver).

        Goes through the failover-aware send: when the coordinator died
        too, the whois pull path waits out the standby lease and the
        report lands on the new primary instead.
        """
        net = self.network
        if net is not None and net.tracer is not None:
            net.tracer.emit(
                "client.unavailable",
                node=failure.node_id,
                op=kind,
                key=payload.get("key"),
            )
        self._coord_send(
            "report.unavailable",
            {"kind": kind, "op": payload, "node": failure.node_id},
        )
