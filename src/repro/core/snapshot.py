"""Whole-file snapshot and restore (offline backup).

The SDDS literature's backup problem: capture a consistent image of a
distributed RAM file so it can be re-materialized later (possibly on a
different multicomputer).  A snapshot records the configuration, the
file state, every bucket group's availability level, every data
bucket's records/ranks/counter, and every parity bucket's records —
enough to restore a byte-identical file, verified by the same oracles
the recovery tests use.

Snapshots are plain dicts of JSON-friendly values (bytes payloads are
kept as ``bytes``; use :func:`to_json` / :func:`from_json` when a text
encoding is needed).
"""

from __future__ import annotations

import base64
import json
from typing import Any

from repro.core.config import LHRSConfig
from repro.core.file import LHRSFile

SNAPSHOT_VERSION = 1


def snapshot_file(file: LHRSFile) -> dict:
    """Capture a consistent image of a running LH*RS file.

    Lazy parity queues are flushed first so the image is
    parity-consistent by construction.
    """
    file.flush_all_parity()
    config = file.config
    coordinator = file.rs_coordinator
    data = []
    for server in file.data_servers():
        data.append(
            {
                "number": server.number,
                "level": server.level,
                "counter": server._rank_counter,
                "free_ranks": sorted(server._free_ranks),
                # Δ-channel high-water: a restored durable bucket must
                # resume its per-channel numbering, not restart it.
                "parity_seq": server._parity_seq,
                "records": [
                    (key, server.ranks[key], payload)
                    for key, payload in server.bucket.records.items()
                ],
            }
        )
    parity = []
    for server in file.parity_servers():
        parity.append(
            {
                "group": server.group,
                "index": server.index,
                "expected_seqs": dict(server._expected_seq),
                # _snapshots renders a stripe-store bucket in one
                # contiguous bytes pass; identical dicts either way.
                "records": server._snapshots(),
            }
        )
    return {
        "version": SNAPSHOT_VERSION,
        "config": {
            "group_size": config.group_size,
            "availability": config.availability,
            "bucket_capacity": config.bucket_capacity,
            "field_width": config.field_width,
            "generator": config.generator,
            "compact_ranks": config.compact_ranks,
            "parity_batch_size": config.parity_batch_size,
            "parity_stripe_store": config.parity_stripe_store,
            "durability": config.durability,
            "wal_fsync_interval": config.wal_fsync_interval,
            "durability_checkpoint_interval":
                config.durability_checkpoint_interval,
            "delta_log_capacity": config.delta_log_capacity,
        },
        "state": {
            "n": coordinator.state.n,
            "i": coordinator.state.i,
            "splits_done": coordinator.state.splits_done,
        },
        "group_levels": dict(coordinator.group_levels),
        "data_buckets": data,
        "parity_buckets": parity,
    }


def restore_file(snapshot: dict, file_id: str = "f",
                 network=None) -> LHRSFile:
    """Re-materialize a file from a snapshot.

    The restored file is structurally identical: same state, levels,
    records, ranks and parity — `census_with_ranks` and
    `verify_parity_consistency` match the original.
    """
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {snapshot.get('version')!r}"
        )
    config = LHRSConfig(**snapshot["config"])
    file = LHRSFile(config, file_id=file_id, network=network)
    coordinator = file.rs_coordinator
    net = file.network

    # Replay the split sequence so the coordinator builds every bucket
    # and parity group through its ordinary machinery.
    target_splits = snapshot["state"]["splits_done"]
    for _ in range(target_splits):
        source, target, new_level = coordinator.state.next_split()
        coordinator.on_new_bucket(target, new_level)
        net.register(coordinator.make_server(target, new_level))
        coordinator.state.advance_split()
    restored_state = coordinator.state
    if (restored_state.n, restored_state.i) != (
        snapshot["state"]["n"], snapshot["state"]["i"]
    ):
        raise ValueError("snapshot state does not match its split count")

    # Raise group levels where the snapshot had higher availability.
    for group, level in sorted(snapshot["group_levels"].items()):
        group = int(group)
        current = coordinator.group_level(group)
        if level > current:
            coordinator.raise_group_level(group, level)

    # Bulk-load contents.  On a durable file, bucket.load/parity.load
    # end in a checkpoint, so the restored servers' disks hold a
    # restart-consistent image from the first instant.
    for bucket in snapshot["data_buckets"]:
        net.send(
            coordinator.node_id,
            f"{file_id}.d{bucket['number']}",
            "bucket.load",
            {
                "records": bucket["records"],
                "counter": bucket["counter"],
                "free_ranks": bucket["free_ranks"],
                "level": bucket["level"],
                "parity_seq": bucket.get("parity_seq", 0),
            },
        )
    for parity in snapshot["parity_buckets"]:
        net.send(
            coordinator.node_id,
            f"{file_id}.p{parity['group']}.{parity['index']}",
            "parity.load",
            {
                "records": parity["records"],
                "expected_seqs": {
                    int(pos): seq
                    for pos, seq in parity.get("expected_seqs", {}).items()
                },
            },
        )
    return file


# ----------------------------------------------------------------------
# text encoding
# ----------------------------------------------------------------------
def _encode(value: Any) -> Any:
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    return value


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__bytes__"}:
            return base64.b64decode(value["__bytes__"])
        return {
            (int(k) if k.lstrip("-").isdigit() else k): _decode(v)
            for k, v in value.items()
        }
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


def to_json(snapshot: dict) -> str:
    """Serialize a snapshot to a JSON string (bytes base64-encoded)."""
    return json.dumps(_encode(snapshot))


def from_json(text: str) -> dict:
    """Inverse of :func:`to_json`."""
    return _decode(json.loads(text))
