"""Record structures of the LH*RS file.

A *data record* is the application's (key, payload) plus the rank the
receiving bucket stamped on it.  A *parity record* is one codeword
symbol's worth of parity for a record group — each of the group's k
parity buckets holds its own :class:`ParityRecord` for a rank, all
sharing the same key/length directory but with different parity symbols
(different generator rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gf.field import GF


@dataclass
class DataRecord:
    """One application record as stored in a data bucket."""

    key: int
    payload: bytes
    rank: int

    def wire_size(self) -> int:
        """Estimated transfer size (key + rank + payload)."""
        return 16 + len(self.payload)


@dataclass
class ParityRecord:
    """Parity state for one record group at one parity bucket.

    ``keys``/``lengths`` map group *positions* (bucket offset within the
    group, 0..m-1) to the member record's key and current payload byte
    length — the directory the recovery algorithms read.  ``symbols`` is
    the parity accumulator for this bucket's generator row.
    """

    rank: int
    keys: dict[int, int] = field(default_factory=dict)
    lengths: dict[int, int] = field(default_factory=dict)
    symbols: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.uint8))

    @property
    def member_count(self) -> int:
        """How many data records currently belong to this record group."""
        return len(self.keys)

    @property
    def max_length(self) -> int:
        """Longest member payload (the stripe's logical byte length)."""
        return max(self.lengths.values(), default=0)

    def parity_bytes(self, gf: GF) -> bytes:
        """The parity payload, symbol-aligned."""
        return gf.bytes_from_symbols(self.symbols)

    def wire_size(self) -> int:
        """Estimated transfer size (directory + parity payload)."""
        return 24 * len(self.keys) + self.symbols.nbytes

    def snapshot(self, gf: GF) -> dict:
        """Serializable view used by recovery dumps and bulk loads."""
        return {
            "rank": self.rank,
            "keys": dict(self.keys),
            "lengths": dict(self.lengths),
            "parity": self.parity_bytes(gf),
        }

    @classmethod
    def from_snapshot(cls, snap: dict, gf: GF) -> "ParityRecord":
        """Rebuild a parity record from a :meth:`snapshot` dict."""
        return cls(
            rank=snap["rank"],
            keys=dict(snap["keys"]),
            lengths=dict(snap["lengths"]),
            symbols=gf.symbols_from_bytes(snap["parity"]),
        )
