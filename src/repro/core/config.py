"""Configuration of an LH*RS file."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.availability import AvailabilityPolicy
from repro.gf.field import GF
from repro.sim.faults import RetryPolicy


@dataclass(frozen=True)
class DeadlinePolicy:
    """Per-read latency discipline: budget, hedging and circuit breaking.

    ``deadline`` is the hard per-read latency budget (the SLO, in
    virtual time units).  ``hedge`` lets a client fire the degraded
    parity-reconstruction read once the primary exceeds an adaptive
    delay — the ``hedge_quantile`` of the client's last observed read
    latencies (``hedge_min_samples`` warm-up reads use half the
    deadline).  ``breaker_threshold`` consecutive slow reads against
    one bucket open its circuit breaker for ``breaker_cooldown`` clock
    units, during which reads short-circuit straight to the degraded
    path; the first read after the cooldown probes the primary again.
    """

    deadline: float
    hedge: bool = True
    hedge_quantile: float = 0.99
    hedge_min_samples: int = 16
    breaker_threshold: int = 4
    breaker_cooldown: float = 32.0

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if not 0.0 < self.hedge_quantile < 1.0:
            raise ValueError("hedge_quantile must be in (0, 1)")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown <= 0:
            raise ValueError("breaker_cooldown must be positive")


@dataclass(frozen=True)
class LHRSConfig:
    """All tunables of an LH*RS file.

    Attributes
    ----------
    group_size:
        m — data buckets per bucket group.  The file starts with one
        complete group (n0 = m), so the storage overhead is ~k/m from
        the beginning.
    availability:
        k — initial parity buckets per group (the availability level).
        ``availability=0`` degenerates to plain LH*.
    bucket_capacity:
        b — records per data bucket before an overflow report.
    field_width:
        w of GF(2^w) for the parity calculus (8 or 16 for byte payloads).
    generator:
        Parity matrix construction: "cauchy" (normalized: parity bucket 0
        is XOR) or "vandermonde" (the E13 ablation arm).
    policy:
        Scalable-availability policy; ``AvailabilityPolicy.fixed(k)`` by
        default.  When the policy raises the level as the file grows, new
        groups are born with the higher k.
    upgrade_existing_groups:
        Whether a level raise also retrofits existing groups with the new
        parity buckets (encoded from their data, at a measured messaging
        cost) — the paper's eager variant.  Lazy (False) leaves old
        groups at their birth level.
    parity_batch_size:
        How many Δ-records a data bucket accumulates before shipping
        them to its parity buckets in one batch message.  1 (default)
        is the paper's eager mode: parity is always current and a
        mutation costs 1 + k messages.  B > 1 amortizes to ~1 + k/B
        messages per mutation at the price of a *vulnerability window*:
        if a data bucket crashes with unflushed Δs, those mutations
        (at most B-1 per bucket) are lost — the bucket recovers to its
        last-flushed state.  Recovery flushes every *surviving* group
        member first, so the rest of the group is never affected.
    compact_ranks:
        The §4.3-style deletion enhancement: when a rank below the
        bucket's maximum is freed (delete or split move-out), relocate
        the highest-ranked record into it.  Keeps every bucket's rank
        set dense ({1..size}), so record groups stay maximally occupied
        and the parity storage overhead does not degrade under heavy
        deletion — at the price of extra parity messages per freeing
        operation (benched in E12).
    degraded_reads:
        Serve key searches that hit an unavailable bucket via record
        recovery (A7-style) *before* bucket recovery completes.
    auto_recover:
        Recover failed buckets as soon as an operation or probe detects
        them (the coordinator's normal reaction).  Disable to exercise
        degraded mode in tests.
    spare_servers:
        Size of the hot-spare pool recoveries draw replacement servers
        from; ``None`` (default) models an unbounded pool.  With a
        finite pool, recovery raises :class:`RecoveryError` when no
        spare is left — the operational signal to provision hardware.
    parity_ack:
        Ship Δ-records as request/reply calls instead of fire-and-forget
        sends, retrying transient delivery faults under ``retry_policy``.
        Costs one extra message per Δ but makes parity maintenance
        survive *silently dropped* messages (duplicates and delays are
        already handled by the sequence numbers alone).  Off by default
        to preserve the paper's 1 + k messages per mutation.
    client_acks:
        Clients tag mutations with an ack token and the accepting server
        confirms (one extra message per mutation); unconfirmed mutations
        are retried under ``retry_policy`` and surface
        :class:`~repro.sdds.client.OperationFailed` when the budget runs
        out.  Off by default for the paper's message counts.
    parity_stripe_store:
        Store each parity bucket's records in one contiguous
        (ranks x stripe) symbol matrix instead of one array per record.
        Dumps, signature scans and whole-group encodes then run as
        single 2D kernel passes over the stacked matrix.  On by default;
        protocol behavior and message counts are identical either way —
        this is purely the server-side memory layout.
    retry_attempts / retry_backoff_base / retry_backoff_factor /
    retry_backoff_max:
        The bounded-exponential-backoff discipline senders use against
        transient delivery faults (see
        :class:`~repro.sim.faults.RetryPolicy`).  Backoff waits advance
        the simulated clock, maturing delayed messages and letting crash
        windows pass.
    coordinator_replicas:
        Number of standby coordinator replicas (0 = the classic
        singleton coordinator).  With replicas, every journal append is
        replicated synchronously, checkpoints land in parity-bucket
        headers, and a standby whose lease on the primary expires takes
        over the coordinator node id (see ``repro.core.standby``).
    heartbeat_interval:
        Logical-clock distance between the primary's lease renewals to
        its standbys.
    lease_timeout:
        How long a standby tolerates heartbeat silence before it
        suspects the primary (a direct ping confirms before takeover).
        Must exceed ``heartbeat_interval``.
    journal_checkpoint_interval:
        Replicated journal appends between parity-header checkpoints.
    read_deadline:
        Per-read latency budget in virtual time units (None disables
        the whole deadline/hedge/breaker discipline — the default, and
        a no-op anyway unless a
        :class:`~repro.sim.network.ServiceModel` is installed).  See
        :class:`DeadlinePolicy` for the semantics of the companion
        knobs ``hedge_reads``, ``hedge_quantile``,
        ``hedge_min_samples``, ``breaker_threshold`` and
        ``breaker_cooldown``.
    bucket_queue_limit:
        Bounded inbound queue per bucket server (None = unbounded).
        With a service model installed, sheddable messages beyond the
        bound are refused with a typed ``busy`` reply
        (:class:`~repro.sim.network.NodeBusy`) that senders honor with
        a jittered backoff — load shedding instead of collapse.
    recovery_pace_rate / recovery_pace_burst:
        Token bucket pacing rebuild transfers (survivor dumps, spare
        loads): ``rate`` tokens accrue per clock unit up to ``burst``,
        one transfer costs one token, and a deficit makes recovery
        *wait* (advancing the clock, draining survivor queues) so a
        rebuild never starves foreground operations.  None (default)
        = unpaced, the pre-gray-failure behaviour.
    retry_jitter:
        Decorrelate sender backoff with deterministic jitter (see
        :class:`~repro.sim.faults.RetryPolicy`); off by default to
        keep the exact exponential schedule the pinned tests use.
    health_log_capacity:
        Ring-buffer bound on the coordinator's per-probe-round health
        log; the oldest entries are dropped (and counted) beyond it.
    batch_ops:
        Enable the bulk scatter-gather data plane: the ``*_many``
        client calls bin operations by the client image into one
        ``ops.batch`` message per target bucket, servers apply each
        sub-batch vectorized (ranks taken in one pass, payloads stacked
        into 2D kernels) and coalesce Δ-parity into a single
        ``parity.batch`` per (bucket, parity-target) pair per client
        batch.  Off by default: with the knob off the ``*_many`` calls
        degrade to the scalar per-op loop and every message trace is
        byte-identical to the unbatched code.
    batch_max_ops:
        Ceiling on ops per scattered sub-batch message; a larger client
        batch is chunked.  Bounds server-side admission cost per
        message and the shed/retry unit.
    batch_bulk_weight:
        Extra service-time units a :class:`~repro.sim.network.ServiceModel`
        charges per op beyond the first in a batch message (``ops.batch``
        and ``parity.batch``), via ``charge_bulk``.  0.0 (default) keeps
        batch messages costing one service time like any other message —
        the pre-batch costing — while a positive weight models per-op
        server work so E20 can report honest batched latency.
    durability:
        Give every data and parity bucket a local
        :class:`~repro.store.SimDisk` with a checksummed write-ahead
        log and periodic checkpoints (``repro.store``).  A crashed
        bucket that is *restored* (rather than replaced) then replays
        its durable prefix, rejoins through the coordinator's fencing
        handshake and fetches only the missed Δ tail from its peers —
        falling back to the full RS rebuild when the log is torn,
        rotted or too stale.  Off by default: with the knob off no
        disk exists, restores keep their legacy silent-rebirth
        semantics and every message trace is byte-identical to the
        non-durable code.
    wal_fsync_interval:
        WAL appends between fsync barriers.  1 (default) is strict
        durability: every logged mutation is on disk before the Δ
        fan-out.  Larger values amortize fsyncs at the price of a
        staleness window — a crash loses up to interval-1 logged
        mutations, which is exactly the tail delta catch-up refetches.
    durability_checkpoint_interval:
        WAL appends between local checkpoints (atomic whole-state
        replace + log truncate).  Bounds replay work and log growth.
    delta_log_capacity:
        Ring-buffer bound on the in-memory Δ tail each server keeps
        for peers catching up (``wal.tail`` / ``delta.tail``).  A
        restarted bucket whose staleness exceeds the ring falls back
        to the full rebuild.
    """

    group_size: int = 4
    availability: int = 1
    bucket_capacity: int = 32
    field_width: int = 8
    generator: str = "cauchy"
    policy: AvailabilityPolicy | None = None
    upgrade_existing_groups: bool = True
    parity_batch_size: int = 1
    compact_ranks: bool = False
    degraded_reads: bool = True
    auto_recover: bool = True
    spare_servers: int | None = None
    parity_ack: bool = False
    client_acks: bool = False
    parity_stripe_store: bool = True
    retry_attempts: int = 4
    retry_backoff_base: float = 1.0
    retry_backoff_factor: float = 2.0
    retry_backoff_max: float = 16.0
    coordinator_replicas: int = 0
    heartbeat_interval: float = 4.0
    lease_timeout: float = 12.0
    journal_checkpoint_interval: int = 16
    read_deadline: float | None = None
    hedge_reads: bool = True
    hedge_quantile: float = 0.99
    hedge_min_samples: int = 16
    breaker_threshold: int = 4
    breaker_cooldown: float = 32.0
    bucket_queue_limit: int | None = None
    recovery_pace_rate: float | None = None
    recovery_pace_burst: float = 8.0
    retry_jitter: bool = False
    health_log_capacity: int = 512
    batch_ops: bool = False
    batch_max_ops: int = 256
    batch_bulk_weight: float = 0.0
    durability: bool = False
    wal_fsync_interval: int = 1
    durability_checkpoint_interval: int = 128
    delta_log_capacity: int = 1024

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError("group_size (m) must be >= 1")
        if self.availability < 0:
            raise ValueError("availability (k) cannot be negative")
        if self.bucket_capacity < 1:
            raise ValueError("bucket_capacity must be >= 1")
        if self.field_width not in (8, 16):
            raise ValueError(
                "field_width must be 8 or 16 for byte-payload parity"
            )
        if self.parity_batch_size < 1:
            raise ValueError("parity_batch_size must be >= 1")
        if self.spare_servers is not None and self.spare_servers < 0:
            raise ValueError("spare_servers cannot be negative")
        if self.coordinator_replicas < 0:
            raise ValueError("coordinator_replicas cannot be negative")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.lease_timeout <= self.heartbeat_interval:
            raise ValueError(
                "lease_timeout must exceed heartbeat_interval or every "
                "renewal races its own expiry"
            )
        if self.journal_checkpoint_interval < 1:
            raise ValueError("journal_checkpoint_interval must be >= 1")
        if self.bucket_queue_limit is not None and self.bucket_queue_limit < 1:
            raise ValueError("bucket_queue_limit must be >= 1")
        if self.recovery_pace_rate is not None and self.recovery_pace_rate <= 0:
            raise ValueError("recovery_pace_rate must be positive")
        if self.recovery_pace_burst < 1:
            raise ValueError("recovery_pace_burst must be >= 1")
        if self.health_log_capacity < 1:
            raise ValueError("health_log_capacity must be >= 1")
        if self.batch_max_ops < 1:
            raise ValueError("batch_max_ops must be >= 1")
        if self.batch_bulk_weight < 0:
            raise ValueError("batch_bulk_weight cannot be negative")
        if self.wal_fsync_interval < 1:
            raise ValueError("wal_fsync_interval must be >= 1")
        if self.durability_checkpoint_interval < 1:
            raise ValueError("durability_checkpoint_interval must be >= 1")
        if self.delta_log_capacity < 1:
            raise ValueError("delta_log_capacity must be >= 1")
        self.deadline_policy  # validate the SLO knobs (DeadlinePolicy raises)
        self.retry_policy  # validate the retry knobs (RetryPolicy raises)
        limit = (1 << self.field_width) - self.group_size
        if self.max_availability > limit:
            raise ValueError(
                f"m + max k exceeds GF(2^{self.field_width}); use a wider field"
            )

    @property
    def retry_policy(self) -> RetryPolicy:
        """The sender-side retry/backoff discipline as a policy object."""
        return RetryPolicy(
            attempts=self.retry_attempts,
            backoff_base=self.retry_backoff_base,
            backoff_factor=self.retry_backoff_factor,
            backoff_max=self.retry_backoff_max,
            jitter=self.retry_jitter,
        )

    @property
    def deadline_policy(self) -> DeadlinePolicy | None:
        """The read-latency discipline as a policy object (None = off)."""
        if self.read_deadline is None:
            return None
        return DeadlinePolicy(
            deadline=self.read_deadline,
            hedge=self.hedge_reads,
            hedge_quantile=self.hedge_quantile,
            hedge_min_samples=self.hedge_min_samples,
            breaker_threshold=self.breaker_threshold,
            breaker_cooldown=self.breaker_cooldown,
        )

    @property
    def effective_policy(self) -> AvailabilityPolicy:
        """The availability policy, defaulting to fixed(k)."""
        if self.policy is not None:
            return self.policy
        return AvailabilityPolicy.fixed(self.availability)

    @property
    def max_availability(self) -> int:
        """Upper bound on k this configuration can ever reach."""
        if self.policy is None:
            return self.availability
        return self.policy.max_level

    def make_field(self) -> GF:
        """The GF(2^w) instance for this file."""
        return GF(self.field_width)
