"""Closed-form cost model (the papers' §3-style analysis).

Every figure the benchmarks measure has an analytic counterpart; this
module is those formulas as a first-class API, used by the experiment
assertions and available to capacity planners.  All costs are message
counts (network-invariant) unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Analytic message costs for an LH*RS file.

    Parameters mirror :class:`~repro.core.config.LHRSConfig`: ``m`` is
    the bucket-group size, ``k`` the availability level, ``b`` the
    bucket capacity and ``load`` the steady-state load factor.
    """

    m: int = 4
    k: int = 1
    b: int = 32
    load: float = 0.7

    # ------------------------------------------------------------------
    # failure-free operation costs
    # ------------------------------------------------------------------
    def search(self) -> float:
        """Key search from a converged client: request + record back."""
        return 2.0

    def search_worst_case(self) -> int:
        """Any stale image: request + ≤2 forwards + reply + IAM."""
        return 5

    def insert(self, batch: int = 1) -> float:
        """Insert: the record + one Δ-record per parity bucket.

        ``batch`` > 1 models lazy parity (E15): Δs amortize over B
        mutations.
        """
        return 1.0 + self.k / batch

    update = insert
    delete = insert

    def delete_with_compaction(self) -> float:
        """§4.3 rank compaction adds one batch per parity bucket when a
        mid-range rank frees (the common case under churn)."""
        return 1.0 + 2.0 * self.k

    # ------------------------------------------------------------------
    # structure maintenance
    # ------------------------------------------------------------------
    def split(self) -> float:
        """One split: command round-trip + bulk move + one re-grouping
        batch to each parity bucket of the source and target groups."""
        return 2 + 1 + 2 * self.k

    def merge(self) -> float:
        """One merge: level reset + command round-trip + bulk move +
        re-grouping batches (source group deletes, absorber inserts) +
        one Δ-channel reset per parity bucket of the surviving group."""
        return 1 + 2 + 1 + 2 * self.k + self.k

    # ------------------------------------------------------------------
    # recovery costs
    # ------------------------------------------------------------------
    def group_recovery_messages(self, failed: int = 1,
                                parity_failed: int = 0) -> int:
        """Rebuild ``failed`` data + ``parity_failed`` parity buckets of
        one group: dump every survivor (a call = 2 messages), one bulk
        load per spare."""
        if failed + parity_failed > self.k:
            raise ValueError("beyond the availability level")
        survivors = (self.m - failed) + (self.k - parity_failed)
        return 2 * survivors + failed + parity_failed

    def group_recovery_records(self, failed: int = 1) -> float:
        """Expected records decoded: failed buckets' contents."""
        return failed * self.b * self.load

    def record_recovery_messages(self) -> int:
        """Degraded read: report + locate (2) + ≤(m-1) fetches (2 each)
        + result back to the client."""
        return 2 + 2 + 2 * (self.m - 1) + 1

    def certain_miss_messages(self) -> int:
        """Unsuccessful degraded search: report + locate + result."""
        return 4

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def bucket_overhead(self) -> float:
        """Parity buckets per data bucket: exactly k/m."""
        return self.k / self.m

    def byte_overhead(self) -> float:
        """Parity bytes per data byte ≈ (k/m)/load: a group's rank space
        is as long as its fullest bucket, so parity stripes span the
        bucket capacity while data fills only to the load factor."""
        return (self.k / self.m) / self.load


def lhg_recovery_messages(total_buckets: int, group_size: int,
                          lost_records: int) -> float:
    """LH*g's bucket recovery (A4): scan all ~M/group_size parity
    buckets (multicast + one reply each), then fetch up to group_size-1
    members per lost record — the file-size-*dependent* cost LH*RS's
    group-local recovery removes."""
    parity_buckets = max(total_buckets // group_size, 1)
    return 1 + parity_buckets + 2 * lost_records * (group_size - 1) + 1


def mirroring_recovery_messages() -> int:
    """LH*m: one dump call + one load — the cost floor."""
    return 3
