"""LH*RS — the paper's contribution.

An LH*RS file is an LH* file of data buckets whose bucket groups (m
consecutive buckets) each carry k parity buckets holding Reed-Solomon
parity of the group's *record groups* (records sharing a rank).  Any ≤ k
unavailable buckets per group — data or parity — are recoverable; k can
grow with the file (scalable availability).

Layering:

* :class:`LHRSFile` — the facade applications use.
* :class:`RSClient`, :class:`RSDataServer`, :class:`ParityServer`,
  :class:`RSCoordinator` — the distributed pieces, extending `repro.sdds`.
* :class:`RecoveryManager` — bucket / record / file-state recovery.
* `repro.core.availability` — the availability calculus and the
  scalable-availability policy.
"""

from repro.core.availability import (
    AvailabilityPolicy,
    file_availability,
    group_availability,
    monte_carlo_file_availability,
)
from repro.core.client import RSClient
from repro.core.config import LHRSConfig
from repro.core.costs import CostModel
from repro.core.coordinator import CoordinatorCrashed, RSCoordinator
from repro.core.data_bucket import RSDataServer
from repro.core.file import LHRSFile
from repro.core.journal import CoordinatorJournal, JournalRecord, JournalState
from repro.core.parity_bucket import ParityServer
from repro.core.records import DataRecord, ParityRecord
from repro.core.recovery import RecoveryError, RecoveryManager
from repro.core.snapshot import restore_file, snapshot_file
from repro.core.standby import StandbyCoordinator

__all__ = [
    "LHRSFile",
    "LHRSConfig",
    "CostModel",
    "RSClient",
    "RSCoordinator",
    "StandbyCoordinator",
    "CoordinatorCrashed",
    "CoordinatorJournal",
    "JournalRecord",
    "JournalState",
    "RSDataServer",
    "ParityServer",
    "DataRecord",
    "ParityRecord",
    "RecoveryManager",
    "RecoveryError",
    "snapshot_file",
    "restore_file",
    "AvailabilityPolicy",
    "file_availability",
    "group_availability",
    "monte_carlo_file_availability",
]
