"""Bucket, record and file-state recovery for LH*RS.

All recovery is coordinated from the coordinator's node (the paper's
design: unavailability reports converge there, spares are allocated
there).  Every step that would be a network interaction *is* one — dumps
and loads travel as counted messages — so the experiments read recovery
costs straight off the accounting windows.

* **Group recovery** (`recover_group`): any ≤ k lost buckets of one
  bucket group, data and/or parity, rebuilt in one pass: dump the
  survivors, decode each record group (rank) with the RS codec — the
  single-data-loss case rides the XOR fast path — and bulk-load fresh
  servers registered under the lost buckets' logical addresses.
* **Record recovery** (`recover_record`): the degraded-mode fast path
  serving one key search while bucket recovery would still be running;
  also delivers *certain* unsuccessful searches (the parity directory is
  authoritative about which keys exist).
* **File-state reconstruction** (`reconstruct_state`): the A6-style
  procedure computing (n, i) from surviving buckets' levels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.check import mutants
from repro.core.group import data_node, group_buckets, group_of, parity_node, position_of
from repro.rs.codec import RSCodec
from repro.sim.network import NodeUnavailable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.coordinator import RSCoordinator


class RecoveryError(RuntimeError):
    """Recovery impossible (too many failures) or inconsistent state.

    The algorithms are designed to fail loudly: multiple failures beyond
    the availability level block the operation rather than silently
    losing data.
    """


class RecoveryPacer:
    """Token bucket throttling rebuild transfers against foreground load.

    An unpaced rebuild fires its survivor dumps and spare loads
    back-to-back, parking a burst of work on every survivor's service
    queue — foreground reads then wait behind the rebuild, exactly the
    recovery-starves-clients failure mode.  With pacing, ``rate``
    tokens accrue per clock unit (up to ``burst``); each transfer costs
    its weight in records moved, and on a deficit the recovery *waits*
    — advancing the simulated clock, which drains survivor queues —
    before continuing.
    """

    def __init__(self, network, rate: float, burst: float):
        if rate <= 0:
            raise ValueError("pace rate must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one transfer")
        self.network = network
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last = network.now
        self.waits = 0
        self.waited = 0.0

    def _refill(self) -> None:
        now = self.network.now
        self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now

    def pace(self, cost: float = 1.0) -> None:
        """Take ``cost`` tokens, waiting out any deficit first."""
        net = self.network
        self._refill()
        if self.tokens < cost:
            wait = (cost - self.tokens) / self.rate
            self.waits += 1
            self.waited += wait
            if net.tracer is not None:
                net.tracer.emit("recovery.paced", wait=round(wait, 3))
            if net.metrics is not None:
                net.metrics.counter(
                    "recovery.pace.waits", "rebuild transfers throttled"
                ).inc()
                net.metrics.gauge(
                    "recovery.pace.waited", "total clock units recovery yielded"
                ).inc(wait)
            net.advance(wait)
            self._refill()
        self.tokens -= cost


def parse_node_id(file_id: str, node_id: str):
    """Classify a node id: ("data", bucket), ("parity", group, index),
    or None for foreign/client/coordinator nodes."""
    prefix = f"{file_id}."
    if not node_id.startswith(prefix):
        return None
    rest = node_id[len(prefix):]
    if rest.startswith("d") and rest[1:].isdigit():
        return ("data", int(rest[1:]))
    if rest.startswith("p"):
        parts = rest[1:].split(".")
        if len(parts) == 2 and all(p.isdigit() for p in parts):
            return ("parity", int(parts[0]), int(parts[1]))
    return None


def reconstruct_state(levels: dict[int, int], n0: int) -> tuple[int, int]:
    """A6-style file-state reconstruction from bucket levels.

    ``levels`` maps surviving bucket numbers to their levels j_m.  The
    split boundary (j_{m-1} = j_m + 1) pins (n, i) exactly; if it is not
    visible (all equal levels, or the boundary bucket among the lost),
    the identity M = n + 2^i N over the largest observed bucket is used.
    """
    if not levels:
        raise RecoveryError("no surviving buckets to reconstruct the state from")
    i = min(levels.values())
    for m in sorted(levels):
        if m - 1 in levels and levels[m - 1] == levels[m] + 1:
            return m, levels[m]
    if max(levels.values()) == i:
        # All levels equal: either n = 0, or the boundary is hidden by a
        # loss; fall back to the extent identity.
        total = max(levels) + 1
        n = total - (1 << i) * n0
        return max(n, 0), i
    # Mixed levels but no adjacent boundary visible: the pointer bucket
    # itself is lost; the first bucket still at level i bounds it.
    return min(m for m, j in levels.items() if j == i), i


class RecoveryManager:
    """Executes recovery on behalf of an :class:`RSCoordinator`."""

    def __init__(self, coordinator: "RSCoordinator"):
        self.coordinator = coordinator
        #: counters for the experiments
        self.groups_recovered = 0
        self.records_reconstructed = 0
        self.degraded_reads_served = 0
        #: groups with a recovery in progress (reentrancy guard: dumping
        #: a survivor can flush Δs to a dead parity bucket, whose
        #: unavailability report must not start a nested recovery of the
        #: very group being rebuilt)
        self._recovering_groups: set[int] = set()

    # ------------------------------------------------------------------
    # shortcuts into the coordinator's world
    # ------------------------------------------------------------------
    @property
    def _file_id(self) -> str:
        return self.coordinator.file_id

    @property
    def _net(self):
        return self.coordinator._net()

    def _codec(self, group: int) -> RSCodec:
        cfg = self.coordinator.config
        return RSCodec(
            m=cfg.group_size,
            k=self.coordinator.group_level(group),
            field=self.coordinator.field,
            kind=cfg.generator,
        )

    def _make_pacer(self) -> RecoveryPacer | None:
        """A fresh token bucket per rebuild (None = pacing off)."""
        cfg = self.coordinator.config
        if cfg.recovery_pace_rate is None:
            return None
        return RecoveryPacer(
            self._net, cfg.recovery_pace_rate, cfg.recovery_pace_burst
        )

    def _account_transfer(self, pacer, node_id: str, payload) -> None:
        """Account one rebuild transfer's weight.

        A dump/load moves a whole bucket in one RPC, not one request's
        worth of work: the service plane (when installed) parks one unit
        of serialization backlog per record moved on the node, and the
        pacer is charged the same cost — so ``recovery_pace_rate`` reads
        as records per clock unit.  Pacing *after* the transfer lets the
        just-charged queue drain before the next one fires.
        """
        if isinstance(payload, dict):
            records = payload.get("records")
        else:
            records = payload
        try:
            units = float(max(1, len(records)))
        except TypeError:
            units = 1.0
        net = self._net
        if net.service is not None:
            net.service.charge_bulk(node_id, units, net.now)
        if pacer is not None:
            pacer.pace(units)

    # ------------------------------------------------------------------
    # entry point: a set of failed nodes
    # ------------------------------------------------------------------
    def recover_nodes(self, node_ids: list[str], best_effort: bool = False) -> dict:
        """Recover every listed failed node, grouping work per bucket group.

        With ``best_effort=True`` (the self-healing probe loop) a group
        whose recovery fails — more than k members down, or the spare
        pool exhausted — is *recorded* under ``errors`` instead of
        aborting the sweep, so one doomed group never blocks the repair
        of the others.
        """
        per_group: dict[int, dict[str, list[int]]] = {}
        for node_id in node_ids:
            parsed = parse_node_id(self._file_id, node_id)
            if parsed is None:
                raise RecoveryError(f"cannot recover foreign node {node_id!r}")
            if parsed[0] == "data":
                bucket = parsed[1]
                g = group_of(bucket, self.coordinator.config.group_size)
                per_group.setdefault(g, {"data": [], "parity": []})["data"].append(bucket)
            else:
                _, g, index = parsed
                per_group.setdefault(g, {"data": [], "parity": []})["parity"].append(index)
        summary = {"groups": 0, "data_buckets": 0, "parity_buckets": 0, "records": 0}
        errors: list[dict] = []
        for g, lost in sorted(per_group.items()):
            if g in self._recovering_groups:
                continue  # already being rebuilt higher up the stack
            try:
                stats = self.recover_group(g, lost["data"], lost["parity"])
            except RecoveryError as err:
                if not best_effort:
                    raise
                errors.append({"group": g, "error": str(err)})
                continue
            summary["groups"] += 1
            summary["data_buckets"] += len(lost["data"])
            summary["parity_buckets"] += len(lost["parity"])
            summary["records"] += stats["records"]
        if best_effort:
            summary["errors"] = errors
        return summary

    # ------------------------------------------------------------------
    # group recovery
    # ------------------------------------------------------------------
    def recover_group(
        self, group: int, lost_data: list[int], lost_parity: list[int]
    ) -> dict:
        """Rebuild the given lost buckets of one group onto spares."""
        if group in self._recovering_groups:
            return {
                "group": group,
                "data_buckets": [],
                "parity_buckets": [],
                "records": 0,
                "skipped": True,
            }
        self._recovering_groups.add(group)
        tracer = self._net.tracer
        # Recovery intent: a coordinator crash mid-rebuild leaves this
        # begin record open, and the takeover re-probes the group (the
        # rebuild itself is idempotent roll-forward — spares are fresh).
        begin = self.coordinator._journal(
            "intent.begin",
            op="recover",
            group=group,
            lost_data=sorted(set(lost_data)),
            lost_parity=sorted(set(lost_parity)),
        )
        try:
            try:
                if tracer is None:
                    stats = self._recover_group_locked(
                        group, lost_data, lost_parity
                    )
                else:
                    with tracer.span(
                        "recovery",
                        group=group,
                        lost_data=sorted(set(lost_data)),
                        lost_parity=sorted(set(lost_parity)),
                    ):
                        tracer.emit("recovery.start", group=group)
                        stats = self._recover_group_locked(
                            group, lost_data, lost_parity
                        )
                        tracer.emit(
                            "recovery.end",
                            group=group,
                            records=stats["records"],
                            data_buckets=len(stats["data_buckets"]),
                            parity_buckets=len(stats["parity_buckets"]),
                        )
            except RecoveryError:
                self.coordinator._journal(
                    "intent.end", begin=begin.lsn, outcome="abort"
                )
                raise
            self.coordinator._journal("intent.end", begin=begin.lsn)
            return stats
        finally:
            self._recovering_groups.discard(group)

    def _recover_group_locked(
        self, group: int, lost_data: list[int], lost_parity: list[int]
    ) -> dict:
        coordinator = self.coordinator
        cfg = coordinator.config
        m = cfg.group_size
        k = coordinator.group_level(group)
        codec = self._codec(group)

        data_buckets = group_buckets(group, m, coordinator.state.bucket_count)
        lost_data = sorted(set(lost_data))
        lost_parity = sorted(set(lost_parity))
        for bucket in lost_data:
            if bucket not in data_buckets:
                raise RecoveryError(
                    f"bucket {bucket} is not an existing member of group {group}"
                )
        for index in lost_parity:
            if index >= k:
                raise RecoveryError(
                    f"parity index {index} beyond group {group}'s level {k}"
                )

        # Widen to any additional members found unavailable right now.
        for bucket in data_buckets:
            if bucket not in lost_data and not self._net.is_available(
                data_node(self._file_id, bucket)
            ):
                lost_data.append(bucket)
        for index in range(k):
            if index not in lost_parity and not self._net.is_available(
                parity_node(self._file_id, group, index)
            ):
                lost_parity.append(index)
        lost_data.sort()
        lost_parity.sort()

        # ---- collect survivor state (counted messages) ----------------
        # Every dump is a top-level call, so the clock ticks between
        # them and a scheduled failure can take a survivor down *mid-
        # recovery*.  Fold the casualty into the lost set and restart
        # the collection rather than decoding from a torn survivor set.
        coord_id = coordinator.node_id
        while True:
            if len(lost_data) + len(lost_parity) > k:
                raise RecoveryError(
                    f"group {group}: {len(lost_data)} data + "
                    f"{len(lost_parity)} parity buckets lost exceeds "
                    f"availability level k={k}"
                )
            survivors_data = [b for b in data_buckets if b not in lost_data]
            survivors_parity = [i for i in range(k) if i not in lost_parity]
            pacer = self._make_pacer()
            try:
                data_dumps = {}
                for b in survivors_data:
                    data_dumps[b] = self._net.call(
                        coord_id, data_node(self._file_id, b), "bucket.dump"
                    )
                    self._account_transfer(
                        pacer, data_node(self._file_id, b), data_dumps[b]
                    )
                parity_dumps = {}
                for i in survivors_parity:
                    parity_dumps[i] = self._net.call(
                        coord_id,
                        parity_node(self._file_id, group, i),
                        "parity.dump",
                    )
                    self._account_transfer(
                        pacer,
                        parity_node(self._file_id, group, i),
                        parity_dumps[i],
                    )
            except NodeUnavailable as failure:
                parsed = parse_node_id(self._file_id, failure.node_id)
                if parsed is None:  # pragma: no cover - own group members only
                    raise
                if parsed[0] == "data":
                    lost_data = sorted({*lost_data, parsed[1]})
                else:
                    lost_parity = sorted({*lost_parity, parsed[2]})
                continue
            break

        # Crash point: survivors dumped, nothing claimed or installed
        # yet — the window a takeover must re-probe (see recover_group's
        # intent record).
        coordinator._crash_hook("recover.mid")

        # ---- stale-survivor promotion ---------------------------------
        # A surviving parity bucket whose Δ channel lags a surviving data
        # bucket's sequence counter missed traffic (fire-and-forget mode,
        # or a crash report racing the Δ fan-out).  Folding a decode
        # through its payloads would resurrect deleted records, so it is
        # promoted into the lost set and re-encoded from current data.
        survivor_seqs = {
            position_of(b, m): dump.get("parity_seq", 0)
            for b, dump in data_dumps.items()
        }
        stale = sorted(
            index for index, dump in parity_dumps.items()
            if any(
                dump.get("expected_seqs", {}).get(pos, 1) < seq + 1
                for pos, seq in survivor_seqs.items()
            )
        )
        if stale:
            if len(lost_data) + len(lost_parity) + len(stale) > k:
                raise RecoveryError(
                    f"group {group}: surviving parity {stale} lag the data "
                    f"buckets; rebuilding them too exceeds availability "
                    f"level k={k}"
                )
            for index in stale:
                del parity_dumps[index]
            lost_parity = sorted({*lost_parity, *stale})
            survivors_parity = [i for i in range(k) if i not in lost_parity]

        # Claim every needed spare before the rebuild: pool exhaustion
        # must abort before any server is torn down, never mid-install.
        for _ in range(len(lost_data) + len(lost_parity)):
            coordinator.take_spare()

        # ---- rebuild lost content -------------------------------------
        if lost_data:
            if not survivors_parity:
                raise RecoveryError(
                    f"group {group}: data lost but no parity bucket survives"
                )
            directory = self._merge_directory(parity_dumps)
        else:
            directory = self._directory_from_data(data_dumps)

        new_data, new_parity, decoded = self._rebuild(
            codec, m, directory, data_dumps, parity_dumps,
            lost_data, lost_parity, group,
        )

        # ---- Δ-channel bookkeeping ------------------------------------
        # A rebuilt data bucket resumes its sequence counter from the
        # most advanced surviving parity channel (that channel saw every
        # Δ the lost bucket issued); a rebuilt parity bucket expects the
        # next Δ after each data counter, so in-flight retransmissions
        # arrive as duplicates, never as double-applied folds.
        data_seqs = {
            position_of(b, m): dump.get("parity_seq", 0)
            for b, dump in data_dumps.items()
        }
        for bucket in lost_data:
            pos = position_of(bucket, m)
            data_seqs[pos] = max(
                (
                    dump.get("expected_seqs", {}).get(pos, 1) - 1
                    for dump in parity_dumps.values()
                ),
                default=0,
            )

        # ---- install spares under the lost logical addresses ----------
        for bucket in lost_data:
            self._install_data_spare(
                bucket, new_data[bucket], data_seqs[position_of(bucket, m)]
            )
            self._account_transfer(
                pacer, data_node(self._file_id, bucket), new_data[bucket]
            )
        expected_seqs = {pos: seq + 1 for pos, seq in data_seqs.items()}
        for index in lost_parity:
            self._install_parity_spare(
                group, index, new_parity[index], expected_seqs
            )
            self._account_transfer(
                pacer,
                parity_node(self._file_id, group, index),
                new_parity[index],
            )

        self.groups_recovered += 1
        self.records_reconstructed += decoded
        return {
            "group": group,
            "data_buckets": lost_data,
            "parity_buckets": lost_parity,
            "records": decoded,
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _merge_directory(parity_dumps: dict[int, dict]) -> dict[int, dict]:
        """rank -> {keys, lengths, parity-by-index} from parity dumps.

        Every surviving parity bucket carries the same key/length
        directory; their parity payloads differ by generator row.
        """
        directory: dict[int, dict] = {}
        for index, dump in parity_dumps.items():
            for snap in dump["records"]:
                entry = directory.setdefault(
                    snap["rank"],
                    {"keys": snap["keys"], "lengths": snap["lengths"], "parity": {}},
                )
                if entry["keys"] != snap["keys"]:  # pragma: no cover
                    raise RecoveryError(
                        f"parity directories disagree for rank {snap['rank']}"
                    )
                entry["parity"][index] = snap["parity"]
        return directory

    def _directory_from_data(self, data_dumps: dict[int, dict]) -> dict[int, dict]:
        """rank -> {keys, lengths, parity:{}} rebuilt from data dumps
        (used when only parity buckets were lost)."""
        m = self.coordinator.config.group_size
        directory: dict[int, dict] = {}
        for bucket, dump in data_dumps.items():
            pos = position_of(bucket, m)
            for key, rank, payload in dump["records"]:
                entry = directory.setdefault(
                    rank, {"keys": {}, "lengths": {}, "parity": {}}
                )
                entry["keys"][pos] = key
                entry["lengths"][pos] = len(payload)
        return directory

    def _rebuild(
        self,
        codec: RSCodec,
        m: int,
        directory: dict[int, dict],
        data_dumps: dict[int, dict],
        parity_dumps: dict[int, dict],
        lost_data: list[int],
        lost_parity: list[int],
        group: int,
    ) -> tuple[dict[int, dict], dict[int, list], int]:
        """Decode every affected record group; assemble spare contents.

        Ranks sharing a loss pattern — the same set of surviving
        codeword positions and the same set wanted back — share a decode
        matrix, so they are decoded together: each position's payloads
        stack into one ``(nranks, L)`` matrix and one
        :meth:`RSCodec.recover_stripes` kernel call rebuilds every rank
        of the batch at once.  Results are trimmed per rank back to the
        lengths the record-at-a-time path produces (bit-exact: zero
        padding to the batch stripe length is semantically free).
        """
        field = codec.field
        # Index survivor data records by rank and position.
        by_rank: dict[int, dict[int, bytes]] = {}
        for bucket, dump in data_dumps.items():
            pos = position_of(bucket, m)
            for key, rank, payload in dump["records"]:
                by_rank.setdefault(rank, {})[pos] = payload

        lost_positions_data = {position_of(b, m): b for b in lost_data}
        new_data: dict[int, dict] = {
            b: {"records": [], "max_rank": 0} for b in lost_data
        }
        new_parity: dict[int, list] = {i: [] for i in lost_parity}
        decoded = 0

        # ---- pass 1: assemble shares, batch ranks by loss pattern -----
        batches: dict[tuple, list[tuple[int, dict[int, bytes]]]] = {}
        for rank, entry in sorted(directory.items()):
            keys = entry["keys"]
            # Which codeword positions need rebuilding for this rank?
            lost_here = [
                pos for pos in lost_positions_data if pos in keys
            ]
            want = [*lost_here, *(m + i for i in lost_parity)]
            # Track the lost bucket's counter even when nothing decodes.
            for pos in lost_positions_data:
                if pos in keys:
                    bucket = lost_positions_data[pos]
                    new_data[bucket]["max_rank"] = max(
                        new_data[bucket]["max_rank"], rank
                    )
            if not want:
                continue

            shares: dict[int, bytes] = {}
            for pos in range(m):
                if pos in lost_positions_data:
                    continue
                if pos in keys:
                    payload = by_rank.get(rank, {}).get(pos)
                    if payload is None:  # pragma: no cover
                        raise RecoveryError(
                            f"survivor bucket at position {pos} lacks rank {rank}"
                        )
                    shares[pos] = payload
                else:
                    shares[pos] = b""  # known-empty slot: zero payload
            for index, parity in entry["parity"].items():
                shares[m + index] = parity

            signature = (tuple(sorted(shares)), tuple(want))
            batches.setdefault(signature, []).append((rank, shares))

        # ---- pass 2: one stacked decode per loss pattern --------------
        stats = getattr(self._net, "stats", None)
        tracer = self._net.tracer
        for (positions, want), members in batches.items():
            want = list(want)
            lost_here = [pos for pos in want if pos < m]
            ranks = [rank for rank, _ in members]
            # Logical stripe length of each rank (what the scalar path
            # would size its output to) and the common batch length.
            stripe_lengths = [
                field.symbol_length_for_bytes(
                    max(len(p) for p in shares.values())
                )
                for _, shares in members
            ]
            batch_length = max(stripe_lengths)
            stacked = {
                pos: field.stack_payloads(
                    [shares[pos] for _, shares in members], batch_length
                )
                for pos in positions
            }
            recovered = codec.recover_stripes(stacked, want)
            if stats is not None:
                # CPU model: rebuilding one position of one rank costs m
                # multiply-accumulates per stripe symbol, regardless of
                # how the work was dispatched.
                stats.record_symbols(
                    len(want) * m * sum(stripe_lengths)
                )

            for i, rank in enumerate(ranks):
                entry = directory[rank]
                keys, lengths = entry["keys"], entry["lengths"]
                if tracer is not None:
                    tracer.emit(
                        "recovery.rank",
                        group=group,
                        rank=rank,
                        rebuilt=list(want),
                        stripe_symbols=stripe_lengths[i],
                    )
                for pos in lost_here:
                    bucket = lost_positions_data[pos]
                    new_data[bucket]["records"].append(
                        (keys[pos], rank,
                         field.bytes_from_symbols(
                             recovered[pos][i], lengths[pos]
                         ))
                    )
                    decoded += 1
                for index in lost_parity:
                    new_parity[index].append(
                        {
                            "rank": rank,
                            "keys": dict(keys),
                            "lengths": dict(lengths),
                            "parity": field.bytes_from_symbols(
                                recovered[m + index][i][: stripe_lengths[i]]
                            ),
                        }
                    )
        for index in lost_parity:
            new_parity[index].sort(key=lambda snap: snap["rank"])
        for bucket in lost_data:
            new_data[bucket]["records"].sort(key=lambda rec: rec[1])
        return new_data, new_parity, decoded

    # ------------------------------------------------------------------
    def _install_data_spare(
        self, bucket: int, content: dict, parity_seq: int = 0
    ) -> None:
        coordinator = self.coordinator
        node_id = data_node(self._file_id, bucket)
        if coordinator.config.durability:
            coordinator.bump_epoch(node_id)
        self._net.unregister(node_id)
        level = coordinator.state.level_of(bucket)
        server = coordinator.make_server(bucket, level)
        self._net.register(server)
        used = sorted(rank for _, rank, _ in content["records"])
        counter = content["max_rank"]
        free = sorted(set(range(1, counter + 1)) - set(used))
        try:
            self._net.send(
                coordinator.node_id,
                node_id,
                "bucket.load",
                {
                    "records": content["records"],
                    "counter": counter,
                    "free_ranks": free,
                    "level": level,
                    "parity_seq": parity_seq,
                },
            )
        except NodeUnavailable:
            # A scheduled failure hit the spare on this very tick: it is
            # now just another unavailable bucket for the next sweep.
            pass

    def _install_parity_spare(
        self,
        group: int,
        index: int,
        records: list,
        expected_seqs: dict[int, int] | None = None,
    ) -> None:
        coordinator = self.coordinator
        node_id = parity_node(self._file_id, group, index)
        if coordinator.config.durability:
            coordinator.bump_epoch(node_id)
        self._net.unregister(node_id)
        server = coordinator.make_parity_server(group, index)
        self._net.register(server)
        try:
            self._net.send(
                coordinator.node_id,
                node_id,
                "parity.load",
                {"records": records, "expected_seqs": expected_seqs or {}},
            )
        except NodeUnavailable:
            # The spare crashed the instant it was installed; the next
            # probe round rebuilds it like any other loss.
            pass

    # ------------------------------------------------------------------
    # delta catch-up (durable restart rejoin)
    # ------------------------------------------------------------------
    def catch_up_data(self, bucket: int, payload: dict) -> bool:
        """Catch a cleanly-restarted data bucket up from its Δ tail.

        The bucket replayed its WAL to ``payload["seq"]`` and is fenced.
        The live parity buckets' per-position rings hold the Δs it
        issued past that prefix; the coordinator resolves them to final
        record states (payloads via record recovery — the parity symbols
        alone cannot be unfolded) and ships a ``catchup.load``.  Returns
        False when the evidence is insufficient — no reachable parity,
        tail evicted from every ring — and the caller must fall back to
        a full RS rebuild.  Repair traffic scales with the missed tail,
        not with the bucket (experiment E21's headline).
        """
        coordinator = self.coordinator
        m = coordinator.config.group_size
        group = group_of(bucket, m)
        if group in self._recovering_groups:
            return False  # the group is mid-rebuild higher up the stack
        pos = position_of(bucket, m)
        k = coordinator.group_level(group)
        node_id = data_node(self._file_id, bucket)
        disk_seq = payload["seq"]
        coord_id = coordinator.node_id
        net = self._net

        tails: dict[int, dict] = {}
        for index in range(k):
            pnode = parity_node(self._file_id, group, index)
            if not net.is_available(pnode):
                continue
            try:
                tails[index] = net.call(
                    coord_id, pnode, "delta.tail",
                    {"pos": pos, "after": disk_seq},
                )
            except NodeUnavailable:
                continue
        if k > 0 and not tails:
            # Without parity evidence the durable prefix cannot be
            # proven complete against what was acknowledged.
            return False

        live_max = max((t["live"] for t in tails.values()), default=disk_seq)
        ops: list[dict] = []
        if live_max > disk_seq:
            source = next(
                (t for t in tails.values()
                 if t["live"] == live_max and t["covered"]),
                None,
            )
            if source is None:
                return False  # too stale: every ring evicted the tail
            ops = source["ops"]

        # Per-key winners, in sequence order (a later op supersedes).
        final: dict[int, dict] = {}
        for op in ops:
            final[op["key"]] = op
        deletes = sorted(
            key for key, op in final.items() if op["op"] == "delete"
        )
        items: list[tuple[int, int, bytes]] = []
        for key in sorted(final):
            op = final[key]
            if op["op"] == "delete":
                continue
            found, value = self.recover_record(key)
            if not found:  # pragma: no cover - directory is authoritative
                return False
            items.append((key, op["rank"], value))

        min_live = min((t["live"] for t in tails.values()), default=disk_seq)
        net.call(
            coord_id, node_id, "catchup.load",
            {
                "set": items,
                "delete": deletes,
                "parity_seq": max(live_max, disk_seq),
                "resend_after": min_live if min_live < disk_seq else None,
            },
        )

        # Post-verify every live parity channel against the final
        # sequence: the resend above closes lags it can reach back to
        # (``floor``); anything still gapped would otherwise stay
        # silently behind until the next Δ arrives — or forever, under
        # quiescence — so it is rebuilt now.
        target = max(live_max, disk_seq)
        lagging = []
        for index in range(k):
            pnode = parity_node(self._file_id, group, index)
            if not net.is_available(pnode):
                continue  # down: the self-healing probe loop owns it
            try:
                check = net.call(
                    coord_id, pnode, "delta.tail",
                    {"pos": pos, "after": target},
                )
            except NodeUnavailable:
                continue
            if check["live"] < target:
                lagging.append(index)
        if lagging:
            self.recover_nodes(
                [parity_node(self._file_id, group, i) for i in lagging],
                best_effort=True,
            )
        return True

    def catch_up_parity(self, group: int, index: int, payload: dict) -> bool:
        """Catch a cleanly-restarted parity bucket up from member WALs.

        Each group member returns its WAL tail past the parity's
        restored channel expectation; the ops (original Δ payloads, in
        per-channel sequence order) are replayed through the normal
        channel check.  Returns False — full-rebuild fallback — when a
        member is unreachable, a tail is no longer covered by the
        member's history ring, or a member's live sequence is *behind*
        the parity's expectation (the member lost a WAL tail this
        parity had applied: the channel's numbering diverged and
        re-encoding from current data is the only safe repair).
        """
        coordinator = self.coordinator
        if group in self._recovering_groups:
            return False
        m = coordinator.config.group_size
        node_id = parity_node(self._file_id, group, index)
        expected = {
            int(p): s for p, s in payload.get("expected_seqs", {}).items()
        }
        coord_id = coordinator.node_id
        net = self._net

        ops: list[dict] = []
        for bucket in group_buckets(
            group, m, coordinator.state.bucket_count
        ):
            pos = position_of(bucket, m)
            member = data_node(self._file_id, bucket)
            after = expected.get(pos, 1) - 1
            try:
                tail = net.call(
                    coord_id, member, "wal.tail", {"after": after}
                )
            except NodeUnavailable:
                return False  # a member is down: its tail is unknowable
            if tail["live"] < after:
                return False  # sequence divergence (see docstring)
            if not tail["covered"]:
                return False
            ops.extend(tail["ops"])

        reply = net.call(coord_id, node_id, "catchup.parity", {"ops": ops})
        return bool(reply["ok"])

    # ------------------------------------------------------------------
    # record recovery (degraded reads)
    # ------------------------------------------------------------------
    def recover_record(self, key: int) -> tuple[bool, bytes | None]:
        """Serve one key whose data bucket is unavailable.

        Returns ``(found, payload)``; ``(False, None)`` is *certain* —
        the parity directory proves the key was never stored.
        """
        mutant_cache = None
        if "stale_degraded_read" in mutants.ACTIVE:
            # Validation mutant: memoize the first reconstruction per
            # key and serve it forever — stale once the record changes
            # between two degraded reads.  The linearizability harness
            # must catch this (tests/check/test_mutants.py).
            mutant_cache = getattr(self, "_stale_read_cache", None)
            if mutant_cache is None:
                mutant_cache = self._stale_read_cache = {}
            if key in mutant_cache:
                self.degraded_reads_served += 1
                return mutant_cache[key]
        coordinator = self.coordinator
        cfg = coordinator.config
        m = cfg.group_size
        bucket = coordinator.state.address(key)
        group = group_of(bucket, m)
        pos = position_of(bucket, m)
        k = coordinator.group_level(group)
        if k == 0:
            raise RecoveryError(
                f"bucket {bucket} is unavailable and group {group} has no parity"
            )
        codec = self._codec(group)
        coord_id = coordinator.node_id

        alive_parity = [
            i for i in range(k)
            if self._net.is_available(parity_node(self._file_id, group, i))
        ]
        if not alive_parity:
            raise RecoveryError(f"group {group}: no parity bucket available")

        first = alive_parity[0]
        located = self._net.call(
            coord_id, parity_node(self._file_id, group, first),
            "parity.locate", {"key": key},
        )
        if located is None:
            if mutant_cache is not None:
                mutant_cache[key] = (False, None)
            return False, None
        rank = located["rank"]
        keys, lengths = located["keys"], located["lengths"]

        shares: dict[int, bytes] = {m + first: located["parity"]}
        lost = {pos}
        for p in range(m):
            if p == pos:
                continue
            if p not in keys:
                shares[p] = b""
                continue
            member = data_node(self._file_id, group * m + p)
            try:
                reply = self._net.call(
                    coord_id, member, "record.fetch", {"key": keys[p]}
                )
            except NodeUnavailable:
                lost.add(p)
                continue
            if not reply["found"]:  # pragma: no cover - directory is authoritative
                raise RecoveryError(
                    f"directory lists key {keys[p]} at bucket {group * m + p} "
                    "but the bucket denies it"
                )
            shares[p] = reply["payload"]

        for index in alive_parity[1:]:
            if len(shares) >= m:
                break
            snap = self._net.call(
                coord_id, parity_node(self._file_id, group, index),
                "parity.rank", {"rank": rank},
            )
            if snap is not None:
                shares[m + index] = snap["parity"]

        if len(shares) < m:
            raise RecoveryError(
                f"record group ({group}, {rank}): only {len(shares)} shares "
                f"survive, {m} needed"
            )
        recovered = codec.recover(
            shares, sorted(lost), payload_lengths={pos: lengths[pos]}
        )
        self.records_reconstructed += 1
        self.degraded_reads_served += 1
        if mutant_cache is not None:
            mutant_cache[key] = (True, recovered[pos])
        return True, recovered[pos]

    # ------------------------------------------------------------------
    # integrity auditing via algebraic signatures
    # ------------------------------------------------------------------
    def audit_group(self, group: int, signature_count: int = 2) -> dict:
        """Scrub one bucket group for silent corruption.

        Collects algebraic signatures — constant bytes per record — from
        every member, then checks the GF-linear relation
        ``sig(parity_i) = XOR_j λ_ij sig(data_j)`` per record group.
        With k >= 2 parity rows the mismatch syndromes identify *which*
        column is corrupt (the error signature e must satisfy
        ``s_i = λ_ij · e`` for every row i); with k = 1 only the fact of
        corruption per rank is known.

        Returns ``{"clean", "mismatched_ranks", "suspects"}`` where
        suspects maps rank -> codeword position (data pos, or m+i for
        parity) when identified.
        """
        coordinator = self.coordinator
        m = coordinator.config.group_size
        k = coordinator.group_level(group)
        field = coordinator.field
        coord_id = coordinator.node_id
        from repro.gf.signatures import combine

        buckets = group_buckets(group, m, coordinator.state.bucket_count)
        data_sigs: dict[int, dict[int, tuple]] = {}
        for bucket in buckets:
            dump = self._net.call(
                coord_id, data_node(self._file_id, bucket),
                "signature.dump", {"count": signature_count},
            )
            data_sigs[dump["position"]] = dump["ranks"]
        parity_sigs: dict[int, dict[int, tuple]] = {}
        for index in range(k):
            dump = self._net.call(
                coord_id, parity_node(self._file_id, group, index),
                "signature.dump", {"count": signature_count},
            )
            parity_sigs[index] = dump["ranks"]

        rows = {i: coordinator.parity_row(i) for i in range(k)}
        all_ranks = set()
        for sigs in parity_sigs.values():
            all_ranks |= set(sigs)
        for sigs in data_sigs.values():
            all_ranks |= set(sigs)

        mismatched: list[int] = []
        suspects: dict[int, int | None] = {}
        for rank in sorted(all_ranks):
            members = {
                pos: sigs[rank]
                for pos, sigs in data_sigs.items() if rank in sigs
            }
            # Syndromes per parity row and signature symbol.
            syndromes: dict[int, list[int]] = {}
            for index in range(k):
                expected = [
                    combine(
                        field,
                        [rows[index][pos] for pos in members],
                        [sig[s] for sig in members.values()],
                    )
                    for s in range(signature_count)
                ]
                actual = list(
                    parity_sigs[index].get(rank, (0,) * signature_count)
                )
                syndromes[index] = [e ^ a for e, a in zip(expected, actual)]
            if all(all(s == 0 for s in v) for v in syndromes.values()):
                continue
            mismatched.append(rank)
            suspects[rank] = self._identify_corruption(
                field, rows, syndromes, members, m, k
            )
        return {
            "group": group,
            "clean": not mismatched,
            "mismatched_ranks": mismatched,
            "suspects": suspects,
        }

    @staticmethod
    def _identify_corruption(field, rows, syndromes, members, m, k):
        """Single-column corruption localization from syndromes.

        A corrupted data column j gives s_i = λ_ij · e for every parity
        row i; a corrupted parity row i0 gives s_i = 0 for i != i0.
        Needs k >= 2 to discriminate; returns the codeword position or
        None when ambiguous.
        """
        candidates = []
        if k >= 2:
            # Parity-column candidates.
            dirty_rows = [i for i, v in syndromes.items() if any(v)]
            if len(dirty_rows) == 1:
                candidates.append(m + dirty_rows[0])
            else:
                # Data-column candidates: consistent error signature.
                for pos in members:
                    errors = set()
                    ok = True
                    for i, vector in syndromes.items():
                        coefficient = rows[i][pos]
                        err = tuple(
                            field.div(s, coefficient) for s in vector
                        )
                        errors.add(err)
                    if len(errors) == 1 and any(next(iter(errors))):
                        candidates.append(pos)
        return candidates[0] if len(candidates) == 1 else None

    def audit_file(self, signature_count: int = 2) -> dict:
        """Scrub every group; returns {"clean", "reports"}."""
        reports = [
            self.audit_group(group, signature_count)
            for group in sorted(self.coordinator.group_levels)
        ]
        return {
            "clean": all(r["clean"] for r in reports),
            "reports": [r for r in reports if not r["clean"]],
        }

    def repair_corruption(self, group: int, suspect_position: int) -> dict:
        """Rebuild a corrupted column from the clean remainder.

        The suspect is treated as a loss: its current (corrupt) content
        is excluded and re-decoded from the other members — the scrub-
        and-repair loop of the signature literature.
        """
        m = self.coordinator.config.group_size
        if suspect_position < m:
            bucket = group * m + suspect_position
            return self.recover_group(group, [bucket], [])
        return self.recover_group(group, [], [suspect_position - m])

    # ------------------------------------------------------------------
    # file-state recovery (A6)
    # ------------------------------------------------------------------
    def recover_file_state(self) -> tuple[int, int]:
        """Reconstruct (n, i) from the surviving data buckets' levels.

        Best-effort by design: buckets that do not answer the status
        probe are tolerated — their levels are filled in from the newest
        coordinator checkpoint held in the parity buckets' headers (the
        "parity directory dump" of the SDDS line).  Only when the
        survivors plus the parity evidence are below what A6 needs does
        this raise a :class:`RecoveryError` naming the missing evidence.
        """
        coordinator = self.coordinator
        targets = {
            b: data_node(self._file_id, b)
            for b in coordinator.state.buckets()
        }
        replies, unavailable = self._net.multicast(
            coordinator.node_id, list(targets.values()), "status"
        )
        levels = {r["bucket"]: r["level"] for r in replies.values()}
        missing = sorted(b for b in targets if b not in levels)
        if missing:
            checkpoint = self._best_parity_checkpoint()
            if checkpoint is not None:
                from repro.lh.state import FileState

                ghost = FileState(
                    n0=coordinator.state.n0,
                    n=checkpoint["n"],
                    i=checkpoint["i"],
                )
                for bucket in missing:
                    if bucket < ghost.bucket_count:
                        levels.setdefault(bucket, ghost.level_of(bucket))
        if not levels:
            raise RecoveryError(
                "cannot reconstruct (n, i): no data bucket answered the "
                "status probe and no parity checkpoint is available; "
                f"missing evidence: data buckets {sorted(targets)} "
                f"(unavailable: {sorted(unavailable)})"
            )
        return reconstruct_state(levels, coordinator.state.n0)

    def _best_parity_checkpoint(self) -> dict | None:
        """Newest coordinator checkpoint any reachable parity bucket
        holds (None when nothing is reachable or nothing was stored)."""
        coordinator = self.coordinator
        best: dict | None = None
        for group, level in sorted(coordinator.group_levels.items()):
            for index in range(level):
                node_id = parity_node(self._file_id, group, index)
                try:
                    reply = self._net.call(
                        coordinator.node_id, node_id, "coord.checkpoint.fetch"
                    )
                except NodeUnavailable:
                    continue
                if reply is not None and (
                    best is None or reply["lsn"] > best["lsn"]
                ):
                    best = dict(reply)
        return best
