"""Write-ahead journal of coordinator state transitions.

LH*RS makes every *data* component expendable, but the reproduction's
coordinator was a singleton Python object: kill it and the file state
``(n, i)``, the per-group parity levels and any in-flight split or
recovery die with it.  This module is the durable half of the fix — a
tiny write-ahead journal the active coordinator appends to before it
acts, replicates synchronously to standby coordinator replicas
(``coord.journal.append``) and periodically checkpoints into the parity
buckets' headers (``coord.checkpoint``).

Record taxonomy (``RECORD_TYPES``):

``file.state``
    Absolute ``{n, i}`` — journaled at bootstrap and after every
    committed split/merge (and once per takeover).
``group.level``
    Absolute ``{group, level}``; ``level == RETIRED`` marks a parity
    group dismantled by a merge.
``spares``
    Absolute ``{remaining}`` spare-pool balance after a claim.
``intent.begin`` / ``intent.end``
    Bracket a restructuring operation (``op`` ∈ split / merge / raise /
    recover).  A ``begin`` whose LSN is never named by an ``end`` is an
    *open intent*: the operation was in flight when the journal stopped,
    and a takeover must roll it forward (or cleanly abort it).
``takeover``
    A standby assumed the coordinator identity at ``{term}``.

Replay semantics are deliberately boring: records are sorted by LSN,
deduplicated by LSN, and every state-bearing record carries *absolute*
values — so replay is idempotent and insensitive to delivery order
within an LSN prefix (the property tests in
``tests/core/test_journal.py`` pin both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

#: ``group.level`` value marking a group dismantled by a merge.
RETIRED = -1

RECORD_TYPES = frozenset(
    {
        "file.state",
        "group.level",
        "spares",
        "intent.begin",
        "intent.end",
        "takeover",
    }
)

#: Operations that bracket their work in intent records.
INTENT_OPS = frozenset({"split", "merge", "raise", "recover"})


@dataclass(frozen=True)
class JournalRecord:
    """One journal entry: a monotonically numbered state transition."""

    lsn: int
    type: str
    payload: Mapping[str, Any]

    def to_wire(self) -> dict[str, Any]:
        return {"lsn": self.lsn, "type": self.type, "payload": dict(self.payload)}

    @staticmethod
    def from_wire(data: Mapping[str, Any]) -> "JournalRecord":
        return JournalRecord(
            lsn=int(data["lsn"]),
            type=str(data["type"]),
            payload=dict(data["payload"]),
        )


@dataclass
class JournalState:
    """What a journal prefix says the coordinator state was.

    ``n``/``i`` are None until a ``file.state`` record has been applied
    (a journal that never saw bootstrap); ``spares_known`` separates
    "no spares record yet" from "the pool is unbounded (None)".
    """

    n: int | None = None
    i: int | None = None
    group_levels: dict[int, int] = field(default_factory=dict)
    spares_remaining: int | None = None
    spares_known: bool = False
    term: int = 0
    applied_lsn: int = 0
    open_intents: list[JournalRecord] = field(default_factory=list)

    def snapshot(self) -> dict[str, Any]:
        """Canonical comparison/serialization form of the applied state."""
        return {
            "lsn": self.applied_lsn,
            "n": self.n,
            "i": self.i,
            "group_levels": {
                str(group): level
                for group, level in sorted(self.group_levels.items())
            },
            "spares": self.spares_remaining if self.spares_known else None,
            "term": self.term,
        }


def replay_records(
    records: Iterable[JournalRecord], upto: int | None = None
) -> JournalState:
    """Fold records into a :class:`JournalState`.

    Sorts by LSN and drops LSN duplicates first, so any permutation (or
    re-delivery) of the same prefix replays to the same state.
    """
    by_lsn: dict[int, JournalRecord] = {}
    for record in records:
        if upto is not None and record.lsn > upto:
            continue
        by_lsn.setdefault(record.lsn, record)

    state = JournalState()
    begins: dict[int, JournalRecord] = {}
    ended: set[int] = set()
    for lsn in sorted(by_lsn):
        record = by_lsn[lsn]
        payload = record.payload
        if record.type == "file.state":
            state.n = int(payload["n"])
            state.i = int(payload["i"])
        elif record.type == "group.level":
            group = int(payload["group"])
            level = int(payload["level"])
            if level == RETIRED:
                state.group_levels.pop(group, None)
            else:
                state.group_levels[group] = level
        elif record.type == "spares":
            state.spares_remaining = payload["remaining"]
            state.spares_known = True
        elif record.type == "intent.begin":
            begins[lsn] = record
        elif record.type == "intent.end":
            ended.add(int(payload["begin"]))
        elif record.type == "takeover":
            state.term = int(payload["term"])
        state.applied_lsn = max(state.applied_lsn, lsn)
    state.open_intents = [
        begins[lsn] for lsn in sorted(begins) if lsn not in ended
    ]
    return state


class CoordinatorJournal:
    """An LSN-keyed record store with append / ingest / replay.

    The primary *appends* (allocating the next LSN); replicas *ingest*
    wire records, which may arrive out of order or more than once —
    LSN-keyed storage makes ingest naturally idempotent and
    ``gaps()``/``contiguous_lsn`` expose what a replica still has to
    fetch before its prefix is complete.
    """

    def __init__(self, records: Iterable[JournalRecord] = ()):  # noqa: D401
        self._records: dict[int, JournalRecord] = {
            record.lsn: record for record in records
        }
        self._subscribers: list[Callable[[JournalRecord], None]] = []

    # ------------------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        return max(self._records, default=0)

    @property
    def contiguous_lsn(self) -> int:
        """Largest L such that every LSN in 1..L is present."""
        lsn = 0
        while lsn + 1 in self._records:
            lsn += 1
        return lsn

    def gaps(self) -> list[int]:
        """LSNs missing below ``last_lsn`` (non-empty only on replicas)."""
        return [
            lsn for lsn in range(1, self.last_lsn) if lsn not in self._records
        ]

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    def append(self, type: str, **payload: Any) -> JournalRecord:
        """Primary-side append: allocate the next LSN and store."""
        if type not in RECORD_TYPES:
            raise ValueError(f"unknown journal record type {type!r}")
        record = JournalRecord(self.last_lsn + 1, type, payload)
        self._records[record.lsn] = record
        for subscriber in self._subscribers:
            subscriber(record)
        return record

    def ingest(self, wire_records: Iterable[Mapping[str, Any]]) -> list[JournalRecord]:
        """Replica-side merge of wire records; returns the new ones."""
        fresh: list[JournalRecord] = []
        for data in wire_records:
            record = JournalRecord.from_wire(data)
            if record.lsn not in self._records:
                self._records[record.lsn] = record
                fresh.append(record)
                for subscriber in self._subscribers:
                    subscriber(record)
        return fresh

    def records(self) -> list[JournalRecord]:
        return [self._records[lsn] for lsn in sorted(self._records)]

    def since(self, after: int) -> list[dict[str, Any]]:
        """Wire form of every record with ``lsn > after``."""
        return [
            self._records[lsn].to_wire()
            for lsn in sorted(self._records)
            if lsn > after
        ]

    def replay(self, upto: int | None = None) -> JournalState:
        return replay_records(self.records(), upto=upto)

    def clone(self) -> "CoordinatorJournal":
        return CoordinatorJournal(self.records())

    def subscribe(self, callback: Callable[[JournalRecord], None]) -> None:
        """Observe every locally stored record (tests, snapshot capture)."""
        self._subscribers.append(callback)
