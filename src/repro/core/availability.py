"""Availability calculus and the scalable-availability policy.

The motivating arithmetic of the paper: a bucket is available with
probability p, so a plain LH* file of M buckets is fully available with
probability p^M — 37% already at M=100, p=0.99.  With k parity buckets
per group of m, a group's data survives any ≤ k unavailable members, and
the file availability becomes a product of per-group survival
probabilities.  For fixed k that product still → 0 as M → ∞, hence
*scalable availability*: raise k as the file grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np

from repro.sim.rng import make_rng


def group_availability(m: int, k: int, p: float) -> float:
    """P(a group's data is servable): ≤ k of its m+k members down.

    ``m`` is the number of *existing* data buckets in the group (the last
    group of a file may be partial).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    n = m + k
    return sum(
        comb(n, f) * (p ** (n - f)) * ((1 - p) ** f) for f in range(k + 1)
    )


def groups_of_file(total_buckets: int, group_size: int) -> list[int]:
    """Sizes of the bucket groups of an M-bucket file (last may be partial)."""
    if total_buckets < 0 or group_size < 1:
        raise ValueError("need total_buckets >= 0 and group_size >= 1")
    full, rest = divmod(total_buckets, group_size)
    return [group_size] * full + ([rest] if rest else [])


def file_availability(
    total_buckets: int,
    group_size: int,
    p: float,
    k: int | None = None,
    k_per_group: list[int] | None = None,
) -> float:
    """P(every record of the file is servable).

    Pass a uniform ``k``, or ``k_per_group`` when groups carry different
    availability levels (scalable availability).  ``k=0`` with one
    giant group reproduces the plain-LH* p^M collapse.
    """
    sizes = groups_of_file(total_buckets, group_size)
    if k_per_group is None:
        if k is None:
            raise ValueError("pass k or k_per_group")
        k_per_group = [k] * len(sizes)
    if len(k_per_group) != len(sizes):
        raise ValueError(
            f"k_per_group has {len(k_per_group)} entries for {len(sizes)} groups"
        )
    out = 1.0
    for size, level in zip(sizes, k_per_group):
        out *= group_availability(size, level, p)
    return out


def monte_carlo_file_availability(
    total_buckets: int,
    group_size: int,
    p: float,
    k: int,
    trials: int = 10_000,
    seed: int | None = None,
) -> float:
    """Estimate :func:`file_availability` by sampling node failures.

    Used as the cross-check in experiment E5 (DESIGN.md invariant 6).
    """
    rng = make_rng(seed)
    sizes = groups_of_file(total_buckets, group_size)
    survived = 0
    for _ in range(trials):
        ok = True
        for size in sizes:
            failures = int(np.count_nonzero(rng.random(size + k) >= p))
            if failures > k:
                ok = False
                break
        survived += ok
    return survived / trials


@dataclass(frozen=True)
class AvailabilityPolicy:
    """How the availability level k scales with the file's group count.

    The level for a file of G groups is::

        k = base_level + #{ t : G >= first_threshold * growth**t, t >= 0 }

    capped at ``max_level``.  ``fixed(k)`` never scales.  Each time the
    level rises, newly created groups are born at the higher k (and, with
    the eager config option, existing groups are retrofitted).
    """

    base_level: int = 1
    first_threshold: int | None = None
    growth: int = 8
    max_level: int = 4

    def __post_init__(self) -> None:
        if self.base_level < 0:
            raise ValueError("base_level cannot be negative")
        if self.first_threshold is not None and self.first_threshold < 1:
            raise ValueError("first_threshold must be >= 1")
        if self.growth < 2:
            raise ValueError("growth must be >= 2")
        if self.max_level < self.base_level:
            raise ValueError("max_level below base_level")

    @classmethod
    def fixed(cls, k: int) -> "AvailabilityPolicy":
        """Uncontrolled availability: k never changes."""
        return cls(base_level=k, first_threshold=None, max_level=k)

    @classmethod
    def scalable(
        cls, base_level: int = 1, first_threshold: int = 8,
        growth: int = 8, max_level: int = 4,
    ) -> "AvailabilityPolicy":
        """Scalable availability: +1 level at G = T, T*g, T*g^2, ..."""
        return cls(
            base_level=base_level,
            first_threshold=first_threshold,
            growth=growth,
            max_level=max_level,
        )

    def level_for(self, group_count: int) -> int:
        """Availability level k for a file with ``group_count`` groups."""
        if group_count < 0:
            raise ValueError("group_count cannot be negative")
        level = self.base_level
        if self.first_threshold is None:
            return min(level, self.max_level)
        threshold = self.first_threshold
        while group_count >= threshold and level < self.max_level:
            level += 1
            threshold *= self.growth
        return level
