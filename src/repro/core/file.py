"""Facade assembling a complete LH*RS file.

``LHRSFile`` is the public entry point of this library: it wires up the
network, the RS coordinator (which creates data buckets and parity
buckets), and clients, and exposes key operations, scans, failure
injection and recovery, plus the oracle inspection the experiments use
(storage overhead, parity consistency, availability estimates).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.availability import file_availability
from repro.core.client import RSClient
from repro.core.config import LHRSConfig
from repro.core.coordinator import RSCoordinator
from repro.core.data_bucket import RSDataServer
from repro.core.group import group_count, parity_node
from repro.core.parity_bucket import ParityServer
from repro.core.recovery import reconstruct_state
from repro.rs.codec import RSCodec
from repro.core.standby import StandbyCoordinator
from repro.sdds.coordinator import SplitPolicy
from repro.sdds.file import LHStarFile
from repro.sim.failure import FailureInjector


class LHRSFile(LHStarFile):
    """A running LH*RS file, its coordinator, servers and default client."""

    coordinator_class = RSCoordinator
    client_class = RSClient

    def __init__(
        self,
        config: LHRSConfig | None = None,
        file_id: str = "f",
        split_policy: SplitPolicy | None = None,
        network=None,
    ):
        self.config = config or LHRSConfig()
        super().__init__(
            file_id=file_id,
            capacity=self.config.bucket_capacity,
            n0=self.config.group_size,
            policy=split_policy,
            network=network,
            config=self.config,
        )
        self.failures = FailureInjector(self.network)
        #: standby coordinator replicas (empty without HA)
        self.standbys: list[StandbyCoordinator] = []
        if self.config.coordinator_replicas:
            self._attach_standbys(self.config.coordinator_replicas)
        #: set by enable_observability (None until then)
        self.tracer = None
        self.metrics = None
        self.auditor = None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def enable_observability(
        self,
        trace_capacity: int | None = None,
        audit: bool = True,
        audit_tail: int = 200,
        strict: bool = True,
    ):
        """Install a tracer, a metrics registry and (optionally) the
        invariant auditor on this file's network.

        Returns ``(tracer, metrics, auditor)`` — also kept as
        attributes.  ``trace_capacity`` bounds the tracer's event buffer
        (None keeps everything, the replay-comparison mode); the auditor
        keeps its own ``audit_tail``-event window regardless.  With
        nothing enabled the cluster pays a single ``is None`` check per
        emission site — see docs/observability.md.
        """
        from repro.obs import InvariantAuditor, MetricsRegistry, Tracer

        self.tracer = Tracer(capacity=trace_capacity)
        self.metrics = MetricsRegistry()
        self.network.install_tracer(self.tracer)
        self.network.install_metrics(self.metrics)
        self.auditor = (
            InvariantAuditor(self.tracer, tail=audit_tail, strict=strict)
            if audit
            else None
        )
        return self.tracer, self.metrics, self.auditor

    def enable_service_model(self, model=None, **kwargs):
        """Install a latency/queue plane on this file's network.

        Pass a prebuilt :class:`~repro.sim.network.ServiceModel` or its
        constructor keywords (``link_latency``, ``service_time``,
        ``drain_rate``).  With it installed, deliveries accrue virtual
        latency (stretched by any slow rules on the fault plane),
        bounded bucket queues shed with typed ``busy`` replies, and the
        clients' deadline/hedge/breaker discipline (``read_deadline``)
        becomes active.  Returns the model.
        """
        from repro.sim.network import ServiceModel

        if model is None:
            kwargs.setdefault("bulk_op_weight", self.config.batch_bulk_weight)
            model = ServiceModel(**kwargs)
        self.network.install_service_model(model)
        return model

    def _client_kwargs(self) -> dict[str, Any]:
        return {
            "retry": self.config.retry_policy,
            "ack_writes": self.config.client_acks,
            "coord_replicas": self.config.coordinator_replicas,
            "deadline": self.config.deadline_policy,
            "batch_ops": self.config.batch_ops,
            "batch_max_ops": self.config.batch_max_ops,
        }

    # ------------------------------------------------------------------
    # coordinator high availability
    # ------------------------------------------------------------------
    def _attach_standbys(self, count: int) -> None:
        """Register ``count`` standby replicas and start heartbeating.

        Standbys seed their journal from the primary's (bootstrap is
        already in it), watch the lease as clock listeners, and receive
        every subsequent append synchronously.
        """
        primary = self.rs_coordinator
        standby_ids = [
            f"{self.file_id}.coord.r{j}" for j in range(1, count + 1)
        ]
        for node_id in standby_ids:
            standby = StandbyCoordinator(
                node_id=node_id,
                file_id=self.file_id,
                config=self.config,
                policy=primary.policy,
                primary_id=primary.node_id,
                peer_ids=standby_ids,
            )
            self.network.register(standby)
            standby.journal.ingest(primary.journal.since(0))
            standby.last_beat = self.network.now
            self.network.add_clock_listener(standby.on_tick)
            self.standbys.append(standby)
        primary.standby_ids = list(standby_ids)
        self.network.add_clock_listener(primary._heartbeat_tick)

    def fail_coordinator(self) -> str:
        """Crash the active coordinator; returns its node id."""
        self.network.fail(self._coordinator_id)
        return self._coordinator_id

    def await_takeover(self, max_advance: float = 400.0) -> RSCoordinator:
        """Advance the clock until a standby has promoted; returns the
        new primary (tests/benchmarks convenience)."""
        if not self.standbys:
            raise RuntimeError("no standby replicas are configured")
        advanced = 0.0
        step = self.config.lease_timeout
        while not self.network.is_available(self._coordinator_id):
            if advanced > max_advance:
                raise TimeoutError(
                    "no standby took over within the advance budget"
                )
            self.network.advance(step)
            advanced += step
        return self.rs_coordinator

    # ------------------------------------------------------------------
    # typing conveniences
    # ------------------------------------------------------------------
    @property
    def rs_coordinator(self) -> RSCoordinator:
        return self.coordinator  # type: ignore[return-value]

    def data_servers(self) -> list[RSDataServer]:
        return super().data_servers()  # type: ignore[return-value]

    def parity_servers(self, group: int | None = None) -> list[ParityServer]:
        """Parity servers of one group, or of the whole file."""
        coordinator = self.rs_coordinator
        groups = (
            [group] if group is not None else sorted(coordinator.group_levels)
        )
        out = []
        for g in groups:
            for index in range(coordinator.group_level(g)):
                out.append(self.network.nodes[parity_node(self.file_id, g, index)])
        return out

    # ------------------------------------------------------------------
    # failure & recovery conveniences
    # ------------------------------------------------------------------
    def fail_data_bucket(self, bucket: int) -> str:
        """Crash the server of data bucket ``bucket``; returns its node id."""
        node_id = f"{self.file_id}.d{bucket}"
        self.network.fail(node_id)
        return node_id

    def fail_parity_bucket(self, group: int, index: int) -> str:
        """Crash parity bucket ``index`` of ``group``; returns its node id."""
        node_id = parity_node(self.file_id, group, index)
        self.network.fail(node_id)
        return node_id

    def recover(self, node_ids: list[str]) -> dict:
        """Explicitly recover the given failed nodes (tests/benchmarks)."""
        return self.rs_coordinator.recovery.recover_nodes(node_ids)

    def recover_record(self, key: int) -> tuple[bool, bytes | None]:
        """Degraded-mode read of one key (record recovery)."""
        return self.rs_coordinator.recovery.recover_record(key)

    def reconstruct_file_state(self) -> tuple[int, int]:
        """Run the A6-style file-state reconstruction and return (n, i)."""
        return self.rs_coordinator.recovery.recover_file_state()

    def flush_all_parity(self) -> int:
        """Lazy mode: flush every data bucket's Δ queue; total flushed."""
        return sum(server.flush_parity() for server in self.data_servers())

    # ------------------------------------------------------------------
    # integrity auditing (algebraic signatures)
    # ------------------------------------------------------------------
    def audit(self, signature_count: int = 2) -> dict:
        """Scrub the whole file for silent corruption via algebraic
        signatures (constant bytes per record on the wire)."""
        return self.rs_coordinator.recovery.audit_file(signature_count)

    def audit_group(self, group: int, signature_count: int = 2) -> dict:
        """Scrub one bucket group; see RecoveryManager.audit_group."""
        return self.rs_coordinator.recovery.audit_group(group, signature_count)

    def repair_corruption(self, group: int, position: int) -> dict:
        """Rebuild the corrupted column an audit identified."""
        return self.rs_coordinator.recovery.repair_corruption(group, position)

    # ------------------------------------------------------------------
    # oracle inspection for experiments
    # ------------------------------------------------------------------
    def group_levels(self) -> dict[int, int]:
        return self.rs_coordinator.group_levels

    def data_storage_bytes(self) -> int:
        """Payload bytes held in data buckets."""
        return sum(
            len(payload)
            for server in self.data_servers()
            for payload in server.bucket.records.values()
        )

    def parity_storage_bytes(self) -> int:
        """Parity payload bytes held in parity buckets."""
        return int(
            sum(
                record.symbols.nbytes
                for server in self.parity_servers()
                for record in server.records.values()
            )
        )

    def storage_overhead(self) -> float:
        """Parity bytes / data bytes — the paper's ~k/m figure."""
        data = self.data_storage_bytes()
        return self.parity_storage_bytes() / data if data else 0.0

    def parity_bucket_count(self) -> int:
        return len(self.parity_servers())

    def analytic_availability(self, p: float) -> float:
        """P(all data servable) given per-bucket availability p, using
        the per-group levels this file actually carries."""
        coordinator = self.rs_coordinator
        m = self.config.group_size
        total = coordinator.state.bucket_count
        levels = [
            coordinator.group_level(g)
            for g in range(group_count(total, m))
        ]
        return file_availability(total, m, p, k_per_group=levels)

    # ------------------------------------------------------------------
    def verify_parity_consistency(self) -> list[str]:
        """Oracle check of DESIGN.md invariant 3.

        Recomputes every group's parity from the data records and
        compares with what the parity buckets hold.  Returns a list of
        discrepancy descriptions (empty = consistent).
        """
        problems: list[str] = []
        coordinator = self.rs_coordinator
        m = self.config.group_size
        field = coordinator.field

        # Gather data records per (group, rank, pos).
        stripes: dict[int, dict[int, dict[int, bytes]]] = {}
        keys_map: dict[int, dict[int, dict[int, int]]] = {}
        for server in self.data_servers():
            for key, payload in server.bucket.records.items():
                rank = server.ranks[key]
                stripes.setdefault(server.group, {}).setdefault(rank, {})[
                    server.position
                ] = payload
                keys_map.setdefault(server.group, {}).setdefault(rank, {})[
                    server.position
                ] = key

        for group, level in coordinator.group_levels.items():
            codec = RSCodec(m, level, field, coordinator.config.generator)
            group_stripes = stripes.get(group, {})
            for index in range(level):
                server: ParityServer = self.network.nodes[
                    parity_node(self.file_id, group, index)
                ]
                expected_ranks = set(group_stripes)
                actual_ranks = set(server.records)
                if expected_ranks != actual_ranks:
                    problems.append(
                        f"group {group} parity {index}: ranks {actual_ranks} "
                        f"!= expected {expected_ranks}"
                    )
                    continue
                for rank, members in group_stripes.items():
                    record = server.records[rank]
                    if record.keys != keys_map[group][rank]:
                        problems.append(
                            f"group {group} parity {index} rank {rank}: key "
                            f"directory mismatch"
                        )
                    payloads: list[bytes | None] = [None] * m
                    for pos, payload in members.items():
                        payloads[pos] = payload
                    expected = codec.encode(payloads)[index]
                    actual = record.parity_bytes(field)
                    length = max(len(expected), len(actual))
                    if expected.ljust(length, b"\0") != actual.ljust(length, b"\0"):
                        problems.append(
                            f"group {group} parity {index} rank {rank}: "
                            f"parity bytes mismatch"
                        )
        return problems

    def census_with_ranks(self) -> dict[int, dict[int, tuple[int, bytes]]]:
        """{bucket -> {key -> (rank, payload)}} snapshot for equality checks."""
        return {
            server.number: {
                key: (server.ranks[key], payload)
                for key, payload in server.bucket.records.items()
            }
            for server in self.data_servers()
        }

    def levels_census(self) -> dict[int, int]:
        """{bucket -> level} directly from servers (oracle)."""
        return {s.number: s.level for s in self.data_servers()}

    def check_reconstructed_state(self) -> bool:
        """A6 sanity: reconstruction from levels matches the true state."""
        n, i = reconstruct_state(self.levels_census(), self.config.group_size)
        return (n, i) == self.rs_coordinator.state.as_tuple()
