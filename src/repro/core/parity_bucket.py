"""The LH*RS parity bucket server.

Parity bucket i of bucket group g holds one :class:`ParityRecord` per
record group (rank) of g: the fold of every member's payload scaled by
this bucket's generator-row coefficient for the member's position.

The coefficients are handed in by the coordinator at creation.  With the
normalized Cauchy generator the rows are *nested*: row i is the same for
every availability level k > i, so raising a group's k never touches
existing parity buckets — the property scalable availability leans on.
Row 0 is all ones, making parity bucket 0 a pure XOR site.

Idempotence: every sequenced Δ carries the sending data bucket's
monotonic operation sequence number, and this bucket tracks the next
expected number per group position.  A Δ below the expectation is a
retransmission and is *skipped* — folding it again would silently
corrupt the parity, since the fold is its own inverse in GF(2^w).  A Δ
above it proves this bucket missed traffic (a dropped message): it
reports itself stale to the coordinator, which rebuilds it from the
group's data.  Unsequenced Δs (coordinator encode batches) apply
unconditionally.

Storage comes in two layouts.  The classic one keeps one numpy array per
parity record.  With ``stripe_store=True`` (the file default) all
records pack into one contiguous :class:`~repro.core.stripe_store.
StripeStore` matrix with a rank→row map; ``record.symbols`` are then row
*views*, dumps render the whole bucket in one bytes pass, signature
scans run as one 2D kernel, and bulk encode batches land as one
``gf_matmul`` over the stacked Δ matrix.
"""

from __future__ import annotations

import zlib
from collections import deque

import numpy as np

from repro.check import mutants
from repro.core.records import ParityRecord
from repro.core.stripe_store import StripeStore
from repro.gf.field import GF
from repro.rs.encoder import fold_delta
from repro.sim.faults import RetryPolicy
from repro.sim.messages import Message
from repro.sim.network import DeliveryFault, NodeUnavailable, UnknownNode
from repro.sim.node import Node
from repro.store.simdisk import DiskError, SimDisk, disk_rng
from repro.store.wal import BucketLog

#: Kinds a fenced (restarted, not yet caught-up) parity bucket refuses
#: with NodeUnavailable: everything that folds Δs or serves content.
#: Catch-up traffic (catchup.parity, delta.tail), channel resets and
#: status probes stay answerable.
PARITY_FENCED_KINDS = frozenset(
    {
        "parity.update",
        "parity.batch",
        "parity.locate",
        "parity.rank",
        "parity.dump",
        "signature.dump",
    }
)


class StoredParityRecord(ParityRecord):
    """A :class:`ParityRecord` whose symbols live in a StripeStore row.

    ``symbols`` is rendered from the store on demand instead of being a
    cached row view: folds write through the store directly, so there is
    nothing to re-bind after a store reallocation — the hot batch paths
    skip both the per-op view creation and the whole-bucket refresh a
    cached binding would force.  Assignments to ``symbols`` are ignored
    (every store-path assignment is a rebind of the very view the
    property renders).
    """

    def __init__(self, rank: int, store: StripeStore):
        self._store = store
        self.rank = rank
        self.keys = {}
        self.lengths = {}

    @property
    def symbols(self) -> np.ndarray:
        store = self._store
        row = store._row_of.get(self.rank)
        if row is None:
            return np.zeros(0, dtype=store.field.symbol_dtype)
        return store.matrix[row, : store._length[self.rank]]

    @symbols.setter
    def symbols(self, value: np.ndarray) -> None:
        pass  # store-backed: the store row *is* the symbol state


class ParityServer(Node):
    """One parity bucket of one bucket group."""

    def __init__(
        self,
        node_id: str,
        file_id: str,
        group: int,
        index: int,
        row: list[int],
        field: GF,
        stripe_store: bool = False,
    ):
        super().__init__(node_id)
        self.file_id = file_id
        self.group = group
        self.index = index
        self.row = list(row)
        self.field = field
        self.records: dict[int, ParityRecord] = {}
        #: contiguous stripe layout (None = one array per record)
        self._store: StripeStore | None = (
            StripeStore(field) if stripe_store else None
        )
        #: next expected Δ sequence number per group position (default 1)
        self._expected_seq: dict[int, int] = {}
        #: retransmissions skipped / gaps detected (observability)
        self.duplicates_skipped = 0
        self.gaps_detected = 0
        #: sticky gap marker: this bucket's content is behind its data.
        #: Surfaced in status replies so the probe loop rebuilds the
        #: bucket even when the report.stale was lost (coordinator down).
        self.stale = False
        #: newest coordinator state checkpoint (HA header; see
        #: RSCoordinator.checkpoint_to_parity)
        self.coord_checkpoint: dict | None = None
        #: §4.1's in-bucket secondary index: member key -> (rank, pos).
        #: Makes record recovery's locate step an O(1) lookup instead of
        #: a scan over every parity record ("shortens the bucket search
        #: time drastically" at negligible storage, as the paper notes);
        #: carrying the position too removes the per-locate scan over
        #: the record's key directory.
        self._key_index: dict[int, tuple[int, int]] = {}
        #: GF multiply-accumulate symbol operations performed (CPU model)
        self.symbol_ops = 0
        #: how many of those folds were coefficient-1 (pure XOR)
        self.xor_folds = 0
        self.general_folds = 0
        # durable storage plane (None = the legacy RAM-only server;
        # enable_durability wires it when config.durability is on)
        self._disk = None
        self._wal = None
        #: per-position ring of (seq, action, key, rank) descriptors of
        #: applied Δs — serves a restarted data bucket's catch-up ask
        self._delta_log: dict[int, deque] | None = None
        self._delta_log_cap = 0
        self._ckpt_interval = 0
        self._appends_since_ckpt = 0
        self.epoch = 0
        self.fenced = False
        self._restarting = False

    # ------------------------------------------------------------------
    # fencing
    # ------------------------------------------------------------------
    def receive(self, message: Message):
        if self.fenced and message.kind in PARITY_FENCED_KINDS:
            failure = NodeUnavailable(self.node_id)
            failure.fenced = True
            raise failure
        return super().receive(message)

    # ------------------------------------------------------------------
    # storage layout helpers
    # ------------------------------------------------------------------
    def _fold_into(self, record: ParityRecord, coefficient: int, delta: bytes) -> None:
        """Fold one Δ into a record under the active storage layout."""
        if self._store is None:
            record.symbols = fold_delta(
                self.field, record.symbols, coefficient, delta
            )
            return
        needed = self.field.symbol_length_for_bytes(len(delta))
        length = max(needed, len(record.symbols))
        self._store.ensure(record.rank, length)
        view = self._store.view(record.rank)
        self.field.scale_accumulate(view, coefficient, delta)

    def _refresh_views(self) -> None:
        """Re-bind every record's symbols view after a store reallocation."""
        assert self._store is not None
        for rank, record in self.records.items():
            record.symbols = self._store.view(rank)

    def _new_record(self, rank: int) -> ParityRecord:
        """A record under the active storage layout (store rows = lazy)."""
        if self._store is None:
            return ParityRecord(rank=rank)
        return StoredParityRecord(rank, self._store)

    def _drop_record(self, rank: int) -> None:
        del self.records[rank]
        if self._store is not None and rank in self._store:
            self._store.release(rank)

    def _count_fold(self, coefficient: int, delta_len: int) -> None:
        self.symbol_ops += self.field.symbol_length_for_bytes(delta_len)
        if coefficient == 1:
            self.xor_folds += 1
        else:
            self.general_folds += 1

    # ------------------------------------------------------------------
    # the Δ-record protocol
    # ------------------------------------------------------------------
    def _apply(self, op: dict) -> None:
        rank = op["rank"]
        pos = op["pos"]
        if not 0 <= pos < len(self.row):
            raise ValueError(
                f"group position {pos} outside 0..{len(self.row) - 1}"
            )
        # Validate the action BEFORE touching any state: folding the Δ
        # first and raising after would leave corrupted parity behind an
        # exception the sender may retry past.
        action = op["op"]
        if action not in ("insert", "update", "delete"):
            raise ValueError(f"unknown parity op {action!r}")
        record = self.records.get(rank)
        created = record is None
        if created:
            record = self._new_record(rank)
            self.records[rank] = record

        coefficient = self.row[pos]
        try:
            self._fold_into(record, coefficient, op["delta"])
        except BaseException:
            if created:
                # Crash between row allocation and directory insert: roll
                # the allocation back so parity.locate / parity.dump
                # never see a half-born record.
                self._drop_record(rank)
            raise
        self._count_fold(coefficient, len(op["delta"]))

        if action == "insert":
            record.keys[pos] = op["key"]
            record.lengths[pos] = op["length"]
            self._key_index[op["key"]] = (rank, pos)
        elif action == "update":
            record.lengths[pos] = op["length"]
        else:  # delete
            record.keys.pop(pos, None)
            record.lengths.pop(pos, None)
            self._key_index.pop(op["key"], None)
            if "double_apply_delete" in mutants.ACTIVE and record.keys:
                # Validation mutant: fold the delete Δ a second time.
                # GF(2) folding is self-inverse, so the second fold
                # re-adds the deleted payload into the parity symbols,
                # corrupting every later reconstruction of the rank's
                # surviving members (tests/check/test_mutants.py).
                self._fold_into(record, coefficient, op["delta"])
            if not record.keys:
                # All members gone: the accumulated deltas cancel exactly.
                self._drop_record(rank)

    def _channel_check(self, op: dict) -> str:
        """Classify one Δ against its channel: apply / duplicate / stale.

        ``apply`` advances the channel.  ``duplicate`` (seq below the
        expectation) must be skipped.  ``stale`` (seq above it) means a
        prior Δ never arrived — this bucket's content is behind its data
        and must be rebuilt, so the Δ is *not* applied either.
        Unsequenced ops (``seq`` absent/None) always apply and leave the
        channel untouched.
        """
        seq = op.get("seq")
        if seq is None:
            return "apply"
        pos = op["pos"]
        expected = self._expected_seq.get(pos, 1)
        if seq < expected:
            self.duplicates_skipped += 1
            verdict = "duplicate"
        elif seq > expected:
            self.gaps_detected += 1
            self.stale = True
            verdict = "stale"
        else:
            self._expected_seq[pos] = expected + 1
            verdict = "apply"
        tracer = self.network.tracer if self.network is not None else None
        if tracer is not None:
            tracer.emit(
                "parity.delta",
                node=self.node_id,
                pos=pos,
                seq=seq,
                expected=expected,
                verdict=verdict,
                op=op["op"],
            )
        return verdict

    def _report_stale(self) -> None:
        """Tell the coordinator this bucket missed Δ traffic (rebuild me).

        A down coordinator is tolerated: the staleness stays in
        :attr:`stale` and the next probe round (post-takeover) sweeps
        it up from the status reply instead.
        """
        try:
            self.send(
                f"{self.file_id}.coord", "report.stale", {"node": self.node_id}
            )
        except (NodeUnavailable, UnknownNode):
            pass

    # ------------------------------------------------------------------
    # coordinator-state checkpoints (HA headers)
    # ------------------------------------------------------------------
    def handle_coord_checkpoint(self, message: Message) -> None:
        """Store the coordinator's state snapshot (newest LSN wins)."""
        checkpoint = message.payload
        if (
            self.coord_checkpoint is None
            or checkpoint["lsn"] >= self.coord_checkpoint["lsn"]
        ):
            self.coord_checkpoint = dict(checkpoint)

    def handle_coord_checkpoint_fetch(self, message: Message) -> dict | None:
        """Return the stored coordinator checkpoint (None = never saw one)."""
        if self.coord_checkpoint is None:
            return None
        return dict(self.coord_checkpoint)

    def handle_parity_update(self, message: Message) -> dict:
        """One Δ-record from a data bucket (insert/update/delete).

        The return value is the ack in ``parity_ack`` mode; plain sends
        discard it.
        """
        verdict = self._channel_check(message.payload)
        if verdict == "apply":
            self._apply(message.payload)
            if self._wal is not None:
                self._record_applied_ops([message.payload])
            return {"status": "applied"}
        if verdict == "stale":
            self._report_stale()
        return {
            "status": verdict,
            "expected": self._expected_seq.get(message.payload["pos"], 1),
        }

    # ------------------------------------------------------------------
    # batch application
    # ------------------------------------------------------------------
    def _bulk_encodable(self, ops: list[dict]) -> bool:
        """Whole-group encode batches can skip the per-op fold loop.

        Eligible when this bucket is empty and every op is an
        unsequenced insert hitting a distinct (rank, pos) slot — exactly
        what the coordinator's parity (re)build paths ship.
        """
        if self.records or not ops:
            return False
        seen: set[tuple[int, int]] = set()
        for op in ops:
            if op.get("seq") is not None or op.get("op") != "insert":
                return False
            if not 0 <= op["pos"] < len(self.row):
                return False  # per-op path raises the proper ValueError
            slot = (op["rank"], op["pos"])
            if slot in seen:
                return False
            seen.add(slot)
        return True

    def _bulk_encode(self, ops: list[dict]) -> int:
        """Encode a whole-group insert batch as one 2D kernel call.

        Packs the Δ payloads into an (m x nranks x L) tensor and applies
        this bucket's generator row with a single ``gf_matmul`` — one
        table gather + XOR per coefficient instead of one fold dispatch
        per record.  Bit-exact with the per-op path (verified by the
        stripe property tests); the symbol-op accounting still charges
        the per-record work actually done.
        """
        field = self.field
        m = len(self.row)
        by_rank: dict[int, list[dict]] = {}
        for op in ops:
            by_rank.setdefault(op["rank"], []).append(op)
        ranks = sorted(by_rank)
        length = max(
            field.symbol_length_for_bytes(len(op["delta"])) for op in ops
        )
        grid: list[list[bytes | None]] = [[None] * len(ranks) for _ in range(m)]
        for r, rank in enumerate(ranks):
            for op in by_rank[rank]:
                grid[op["pos"]][r] = op["delta"]
        stacked = np.stack(
            [field.stack_payloads(column, length) for column in grid]
        )
        parity = field.gf_matmul([self.row], stacked)[0]

        for r, rank in enumerate(ranks):
            record = self._new_record(rank)
            stripe = max(
                field.symbol_length_for_bytes(len(op["delta"]))
                for op in by_rank[rank]
            )
            if self._store is None:
                record.symbols = parity[r, :stripe].copy()
            else:
                self._store.ensure(rank, stripe)
                self._store.view(rank)[:] = parity[r, :stripe]
            for op in by_rank[rank]:
                pos = op["pos"]
                record.keys[pos] = op["key"]
                record.lengths[pos] = op["length"]
                self._key_index[op["key"]] = (rank, pos)
                self._count_fold(self.row[pos], len(op["delta"]))
            self.records[rank] = record
        return len(ops)

    def _expand_block(self, block: dict) -> list[dict]:
        """Per-op Δ-record dicts equivalent to one columnar block."""
        action = block["block"]
        pos = block["pos"]
        seq0 = block["seq0"]
        return [
            {
                "op": action, "key": key, "rank": rank, "pos": pos,
                "delta": delta, "length": length, "seq": seq0 + i,
            }
            for i, (key, rank, delta, length) in enumerate(
                zip(block["keys"], block["ranks"],
                    block["deltas"], block["lengths"])
            )
        ]

    def _fold_block(self, block: dict) -> tuple[int, bool]:
        """Fold one columnar Δ-block; returns (applied, stale).

        The block is a same-position insert/update run with consecutive
        sequence numbers (``seq0`` .. ``seq0`` + n - 1) and distinct
        ranks — what a data bucket's vectorized batch apply emits.  On a
        healthy channel (``seq0`` equals the expectation) the whole
        block channel-checks in one comparison and folds through one
        stacked kernel + scatter.  Anything else — retransmissions,
        gaps, the per-record storage layout, malformed shapes — expands
        to per-op Δs and takes the exact scalar path, so verdicts,
        counters and trace events match op-for-op.
        """
        pos = block["pos"]
        ranks = block["ranks"]
        n = len(ranks)
        expected = self._expected_seq.get(pos, 1)
        store = self._store
        if (
            store is None
            or n == 0
            or block["seq0"] != expected
            or block["block"] not in ("insert", "update")
            or not 0 <= pos < len(self.row)
            or len(set(ranks)) != n
        ):
            applied = 0
            for op in self._expand_block(block):
                verdict = self._channel_check(op)
                if verdict == "apply":
                    self._apply(op)
                    if self._wal is not None:
                        self._record_applied_ops([op])
                    applied += 1
                elif verdict == "stale":
                    return applied, True
            return applied, False
        self._expected_seq[pos] = expected + n
        field = self.field
        deltas = block["deltas"]
        if field.symbol_dtype.itemsize == 1:
            needs = [len(d) for d in deltas]
        else:
            needs = [field.symbol_length_for_bytes(len(d)) for d in deltas]
        stacked = field.stack_payloads(deltas, max(needs))
        coefficient = self.row[pos]
        if coefficient == 1:
            scaled = stacked  # rows are only read below; alias is safe
        else:
            scaled = field.mul_matrix(stacked, coefficient)
        store.scatter_xor(ranks, needs, scaled)
        action = block["block"]
        keys = block["keys"]
        lengths = block["lengths"]
        records = self.records
        key_index = self._key_index
        for i in range(n):
            rank = ranks[i]
            record = records.get(rank)
            if record is None:
                record = StoredParityRecord(rank, store)
                records[rank] = record
            if action == "insert":
                record.keys[pos] = keys[i]
                key_index[keys[i]] = (rank, pos)
            record.lengths[pos] = lengths[i]
        tracer = self.network.tracer if self.network is not None else None
        if tracer is not None:
            seq0 = block["seq0"]
            for i in range(n):
                tracer.emit(
                    "parity.delta", node=self.node_id, pos=pos,
                    seq=seq0 + i, expected=expected + i,
                    verdict="apply", op=action,
                )
        self.symbol_ops += sum(needs)
        if coefficient == 1:
            self.xor_folds += n
        else:
            self.general_folds += n
        if self._wal is not None:
            seq0 = block["seq0"]
            ring = self._delta_log.setdefault(
                pos, deque(maxlen=self._delta_log_cap)
            )
            for i in range(n):
                ring.append((seq0 + i, action, keys[i], ranks[i]))
            self._log_entry({"pblock": block})
        return n, False

    def _bulk_foldable(self, ops: list[dict], start: int) -> int:
        """Length of the one-kernel-foldable run at ``start``.

        A run is sequenced insert/update Δs sharing one (valid) group
        position — exactly the shape of a coalesced client batch from
        one data bucket.  Deletes (record-group bookkeeping, possible
        drop) and unsequenced ops stay on the per-op path, splitting the
        batch into segments.
        """
        pos = ops[start]["pos"]
        if not 0 <= pos < len(self.row):
            return 0  # per-op path raises the proper ValueError
        run = start
        while run < len(ops):
            op = ops[run]
            if (
                op.get("seq") is None
                or op["op"] not in ("insert", "update")
                or op["pos"] != pos
            ):
                break
            run += 1
        return run - start

    def _bulk_fold(self, ops: list[dict]) -> tuple[int, bool]:
        """Fold one same-position run with one stacked kernel pass.

        Channel-checks every op first (collecting the appliers, skipping
        duplicates, stopping at the first stale — the checks only touch
        ``_expected_seq``, which no fold reads, so check-then-fold is
        order-equivalent to the scalar interleaving), then scales the
        whole stacked Δ matrix by the position's coefficient in ONE
        table gather and folds row by row.  Returns (applied, stale).
        """
        pos = ops[0]["pos"]
        applies: list[dict] = []
        stale = False
        for op in ops:
            verdict = self._channel_check(op)
            if verdict == "apply":
                applies.append(op)
            elif verdict == "stale":
                stale = True
                break
        if not applies:
            return 0, stale
        field = self.field
        coefficient = self.row[pos]
        needs = [
            field.symbol_length_for_bytes(len(op["delta"])) for op in applies
        ]
        stacked = field.stack_payloads(
            [op["delta"] for op in applies], max(needs)
        )
        if coefficient == 1:
            scaled = stacked  # rows are only read below; alias is safe
        else:
            scaled = field.mul_matrix(stacked, coefficient)
        ranks = [op["rank"] for op in applies]
        if self._store is not None and len(set(ranks)) == len(ranks):
            # Store-backed with distinct ranks (every coalesced client
            # batch: distinct keys ⇒ distinct ranks): fold the whole run
            # in ONE fancy-index scatter instead of a per-row loop.
            # Rows are zero beyond their logical length, so the
            # full-width XOR is byte-identical to per-row prefix folds.
            self._store.scatter_xor(ranks, needs, scaled)
            records, key_index, store = self.records, self._key_index, self._store
            for op, rank in zip(applies, ranks):
                record = records.get(rank)
                if record is None:
                    record = StoredParityRecord(rank, store)
                    records[rank] = record
                if op["op"] == "insert":
                    record.keys[pos] = op["key"]
                    record.lengths[pos] = op["length"]
                    key_index[op["key"]] = (rank, pos)
                else:  # update
                    record.lengths[pos] = op["length"]
            self.symbol_ops += sum(needs)
            if coefficient == 1:
                self.xor_folds += len(applies)
            else:
                self.general_folds += len(applies)
            if self._wal is not None:
                self._record_applied_ops(applies)
            return len(applies), stale
        for op, row, needed in zip(applies, scaled, needs):
            rank = op["rank"]
            record = self.records.get(rank)
            created = record is None
            if created:
                record = self._new_record(rank)
                self.records[rank] = record
            try:
                self._fold_prescaled(record, row, needed)
            except BaseException:
                if created:
                    self._drop_record(rank)
                raise
            self._count_fold(coefficient, len(op["delta"]))
            if op["op"] == "insert":
                record.keys[pos] = op["key"]
                record.lengths[pos] = op["length"]
                self._key_index[op["key"]] = (rank, pos)
            else:  # update
                record.lengths[pos] = op["length"]
        if self._wal is not None:
            self._record_applied_ops(applies)
        return len(applies), stale

    def _fold_prescaled(
        self, record: ParityRecord, scaled: np.ndarray, needed: int
    ) -> None:
        """Fold one already-scaled Δ row, mirroring :meth:`_fold_into`
        byte-for-byte (growth rule, store ensure, XOR extent)."""
        if self._store is None:
            symbols = record.symbols
            if needed > len(symbols):
                grown = np.zeros(needed, dtype=self.field.symbol_dtype)
                grown[: len(symbols)] = symbols
                symbols = grown
            symbols[:needed] ^= scaled[:needed]
            record.symbols = symbols
            return
        length = max(needed, len(record.symbols))
        self._store.ensure(record.rank, length)
        view = self._store.view(record.rank)
        view[:needed] ^= scaled[:needed]

    def handle_parity_batch(self, message: Message) -> dict:
        """Batched Δ-records (client batches, splits, merges, encodes).

        Whole-group encode batches (fresh bucket, unsequenced inserts)
        take the 2D bulk path.  Sequenced same-position insert/update
        runs — the coalesced client batches — fold through one stacked
        kernel per run (:meth:`_bulk_fold`); everything else applies op
        by op.  Ops in one batch share a channel and are contiguous, so
        the first stale op means every later one is too — stop and
        report once.  A trailing ``expected_seqs`` map (coordinator
        encode paths) re-bases the channels afterwards.
        """
        ops = message.payload["ops"]
        tracer = self.network.tracer if self.network is not None else None
        if tracer is not None:
            tracer.emit(
                "parity.batch", node=self.node_id, ops=len(ops)
            )
        encoded = False
        if self._bulk_encodable(ops):
            applied = self._bulk_encode(ops)
            encoded = True
        else:
            applied = 0
            i = 0
            while i < len(ops):
                if "block" in ops[i]:
                    done, stale = self._fold_block(ops[i])
                    applied += done
                    i += 1
                elif (run := self._bulk_foldable(ops, i)) >= 2:
                    done, stale = self._bulk_fold(ops[i:i + run])
                    applied += done
                    i += run
                else:
                    op = ops[i]
                    verdict = self._channel_check(op)
                    stale = verdict == "stale"
                    if verdict == "apply":
                        self._apply(op)
                        if self._wal is not None:
                            self._record_applied_ops([op])
                        applied += 1
                    i += 1
                if stale:
                    self._report_stale()
                    return {"status": "stale", "applied": applied}
        expected = message.payload.get("expected_seqs")
        if expected:
            self._expected_seq.update(
                {int(pos): seq for pos, seq in expected.items()}
            )
        if self._wal is not None and (encoded or expected):
            # Whole-group encodes and channel re-bases are full-state
            # events (recovery paths): checkpoint instead of logging.
            self.checkpoint_now()
        return {"status": "applied", "applied": applied}

    def handle_parity_reset(self, message: Message) -> None:
        """Close the Δ-channels of retired group positions.

        Sent by the coordinator when a data bucket dissolves in a merge
        while its group lives on.  A later split may re-create the
        bucket as a *fresh* server whose sequence counter restarts at
        zero; without the reset its Δs would arrive below the old
        channel expectation and be skipped as retransmissions.
        """
        positions = message.payload["positions"]
        tracer = self.network.tracer if self.network is not None else None
        if tracer is not None:
            tracer.emit(
                "parity.reset", node=self.node_id, positions=list(positions)
            )
        for pos in positions:
            self._expected_seq.pop(pos, None)
        if self._wal is not None:
            for pos in positions:
                self._delta_log.pop(pos, None)
            self._log_entry({"ctl": "reset", "positions": list(positions)})

    # ------------------------------------------------------------------
    # queries used by recovery
    # ------------------------------------------------------------------
    def _snapshots(self) -> list[dict]:
        """Snapshot every record; one contiguous bytes pass with a store."""
        if self._store is None:
            return [r.snapshot(self.field) for r in self.records.values()]
        payloads = self._store.row_bytes()
        return [
            {
                "rank": rank,
                "keys": dict(record.keys),
                "lengths": dict(record.lengths),
                "parity": payloads.get(rank, b""),
            }
            for rank, record in self.records.items()
        ]

    def handle_parity_dump(self, message: Message) -> dict:
        """Everything this bucket knows (bucket recovery reads this)."""
        return {
            "group": self.group,
            "index": self.index,
            "records": self._snapshots(),
            "expected_seqs": dict(self._expected_seq),
        }

    def handle_parity_locate(self, message: Message) -> dict | None:
        """The record group containing ``key``, or None (record recovery).

        A None answer from a parity bucket is authoritative: every stored
        record of the group has an entry in every parity bucket, so the
        searched key does not exist and the key search can terminate
        *unsuccessfully with certainty* even while data buckets are down.
        """
        key = message.payload["key"]
        entry = self._key_index.get(key)
        if entry is None:
            return None
        rank, pos = entry
        record = self.records[rank]
        snap = record.snapshot(self.field)
        snap["pos"] = pos
        return snap

    def handle_parity_rank(self, message: Message) -> dict | None:
        """Snapshot of one rank's parity record (or None)."""
        record = self.records.get(message.payload["rank"])
        return record.snapshot(self.field) if record else None

    def _load_records(self, snaps: list[dict]) -> None:
        """Replace the whole record set from snapshots (load / restart)."""
        self.records = {}
        if self._store is not None:
            self._store = StripeStore(self.field)
        for snap in snaps:
            record = self._new_record(snap["rank"])
            record.keys = dict(snap["keys"])
            record.lengths = dict(snap["lengths"])
            self.records[snap["rank"]] = record
        if self._store is None:
            for snap in snaps:
                self.records[snap["rank"]].symbols = (
                    self.field.symbols_from_bytes(snap["parity"])
                )
        else:
            self._store.bulk_load(
                [(snap["rank"], snap["parity"]) for snap in snaps]
            )
        self._key_index = {
            key: (rank, pos)
            for rank, record in self.records.items()
            for pos, key in record.keys.items()
        }

    def handle_parity_load(self, message: Message) -> None:
        """Bulk-load recovered content into a fresh (spare) parity bucket."""
        self._load_records(message.payload["records"])
        # A rebuilt spare is encoded from the group's *current* data, so
        # every Δ the senders have issued is already reflected; adopting
        # their counters makes any in-flight retransmission a duplicate.
        self._expected_seq = {
            int(pos): seq
            for pos, seq in message.payload.get("expected_seqs", {}).items()
        }
        self.stale = False
        if self._wal is not None:
            # A rebuilt image is the new durable baseline; whatever the
            # disk held belonged to another life.
            self._delta_log.clear()
            self.checkpoint_now()

    def handle_signature_dump(self, message: Message) -> dict:
        """Algebraic signatures of every parity record, keyed by rank.

        With the stripe store the whole bucket is one stacked matrix and
        the signatures come out of one vectorized pass per signature
        symbol (zero padding contributes nothing to a signature).
        """
        count = message.payload.get("count", 2)
        if self._store is not None:
            from repro.gf.signatures import signature_matrix

            ranks, matrix = self._store.stacked()
            vectors = signature_matrix(self.field, matrix, count)
            return {
                "index": self.index,
                "ranks": dict(zip(ranks, vectors)),
            }
        from repro.gf.signatures import signature_vector

        return {
            "index": self.index,
            "ranks": {
                rank: signature_vector(
                    self.field, record.parity_bytes(self.field), count
                )
                for rank, record in self.records.items()
            },
        }

    def handle_status(self, message: Message) -> dict:
        status = {
            "group": self.group,
            "index": self.index,
            "records": len(self.records),
            "parity_bytes": int(
                self._store.nbytes() if self._store is not None
                else sum(r.symbols.nbytes for r in self.records.values())
            ),
            "stale": self.stale,
        }
        if self._wal is not None:
            status.update(fenced=self.fenced, epoch=self.epoch)
        return status

    # ------------------------------------------------------------------
    # durable storage plane: WAL, checkpoints, restart and catch-up
    # ------------------------------------------------------------------
    def enable_durability(self, config) -> None:
        """Attach the simulated disk and WAL (``config.durability``)."""
        from repro.sim.rng import DEFAULT_SEED

        self._disk = SimDisk(
            self.node_id,
            rng=disk_rng(DEFAULT_SEED, self.node_id),
            profile=self._disk_profile,
        )
        self._wal = BucketLog(self._disk, fsync_interval=config.wal_fsync_interval)
        self._ckpt_interval = config.durability_checkpoint_interval
        self._delta_log = {}
        self._delta_log_cap = config.delta_log_capacity
        self.checkpoint_now()

    def _disk_profile(self) -> dict:
        net = self.network
        if net is None or net.fault_plane is None:
            return {}
        return net.fault_plane.disk_profile(self.node_id, net.now)

    def _log_entry(self, entry: dict) -> None:
        try:
            self._wal.append(entry)
        except DiskError:
            self._fail_stop()
        self._appends_since_ckpt += 1
        if self._appends_since_ckpt >= self._ckpt_interval:
            self.checkpoint_now()

    def _fail_stop(self) -> None:
        """Crash the node rather than run past a disk write it lost."""
        net = self.network
        if net is not None and net.is_available(self.node_id):
            net.fail(self.node_id)
        raise NodeUnavailable(self.node_id)

    def _record_applied_ops(self, applies: list[dict]) -> None:
        """Post-apply durability duties: note sequenced Δs in the
        per-position catch-up ring, then WAL the batch in one frame."""
        for op in applies:
            if op.get("seq") is not None:
                self._delta_log.setdefault(
                    op["pos"], deque(maxlen=self._delta_log_cap)
                ).append((op["seq"], op["op"], op["key"], op["rank"]))
        self._log_entry({"pops": applies})

    def checkpoint_now(self) -> None:
        """Write a full-state checkpoint and truncate the WAL."""
        state = {
            "kind": "parity",
            "epoch": self.epoch,
            "records": self._snapshots(),
            "expected_seqs": dict(self._expected_seq),
            "stale": self.stale,
            "coord": self.coord_checkpoint,
            "delta_log": {
                pos: list(ring) for pos, ring in self._delta_log.items()
            },
        }
        try:
            self._wal.checkpoint(state)
        except DiskError:
            self._fail_stop()
        self._appends_since_ckpt = 0
        net = self.network
        if net is not None and net.tracer is not None:
            net.tracer.emit(
                "disk.checkpoint", node=self.node_id, lsn=self._wal.lsn,
                records=len(self.records),
            )
        if net is not None and net.metrics is not None:
            net.metrics.counter(
                "disk.checkpoints", "bucket checkpoints written"
            ).inc()

    # -- restart-with-delta-catch-up -----------------------------------
    def on_restored(self) -> None:
        """Network hook: this node just came back from a crash.

        RAM-only servers (durability off) keep the legacy silent-rebirth
        semantics, which the pre-durability chaos suites pin: the hook
        returns immediately.
        """
        if self._wal is None or self._restarting:
            return
        self._restarting = True
        try:
            self._restart()
        except NodeUnavailable:
            pass  # disk fail-stop mid-restart; the probe sweep rebuilds
        finally:
            self._restarting = False

    def _restart(self) -> None:
        """Replay the durable prefix, fence, and rejoin the file."""
        net = self._net()
        self._disk.crash()
        state, tail, clean = self._wal.recover()
        self._expected_seq = {}
        self.stale = False
        self.coord_checkpoint = None
        self._delta_log = {}
        self._appends_since_ckpt = 0
        if state is None or state.get("kind") != "parity":
            clean, tail = False, []
            self.epoch = 0
            self._load_records([])
        else:
            self.epoch = state["epoch"]
            self._load_records(state["records"])
            self._expected_seq = {
                int(pos): seq for pos, seq in state["expected_seqs"].items()
            }
            self.stale = bool(state["stale"])
            self.coord_checkpoint = state["coord"]
            self._delta_log = {
                int(pos): deque(
                    (tuple(item) for item in ring), maxlen=self._delta_log_cap
                )
                for pos, ring in state["delta_log"].items()
            }
            for frame in tail:
                self._replay_frame(frame)
        self.fenced = True
        if net.tracer is not None:
            net.tracer.emit(
                "bucket.restart", node=self.node_id, kind="parity",
                bucket=self.index, clean=clean, replayed=len(tail),
            )
        if net.metrics is not None:
            net.metrics.counter("disk.restarts", "bucket restart replays").inc()
        self._rejoin_file(clean)

    def _rejoin_file(self, clean: bool) -> None:
        """Report the restart; the coordinator catches us up or rebuilds.

        Mirrors the data-bucket flow: the verdict travels out-of-band
        (``catchup.parity`` unfences, a rebuild replaces us under our
        own id), so a lost reply after the coordinator acted is
        harmless.
        """
        net = self._net()
        payload = {
            "node": self.node_id,
            "kind": "parity",
            "group": self.group,
            "index": self.index,
            "epoch": self.epoch,
            "expected_seqs": dict(self._expected_seq),
            "clean": clean and not self.stale,
        }
        policy = RetryPolicy()
        for attempt in range(policy.attempts):
            try:
                self.call(f"{self.file_id}.coord", "rejoin", payload)
                return
            except DeliveryFault as fault:
                if fault.stage == "reply":
                    return
            except (NodeUnavailable, UnknownNode):
                pass
            if attempt + 1 < policy.attempts:
                net.advance(policy.delay(
                    attempt, zlib.crc32(f"{self.node_id}->rejoin".encode()),
                ))
        if net.nodes.get(self.node_id) is self:
            net.fail(self.node_id)
        raise NodeUnavailable(self.node_id)

    # -- WAL replay ----------------------------------------------------
    def _replay_frame(self, frame: dict) -> None:
        if "ctl" in frame:
            if frame["ctl"] == "reset":
                for pos in frame["positions"]:
                    self._expected_seq.pop(pos, None)
                    self._delta_log.pop(pos, None)
            return
        for op in (
            self._expand_block(frame["pblock"]) if "pblock" in frame
            else frame["pops"]
        ):
            self._replay_apply(op)

    def _replay_apply(self, op: dict) -> None:
        """Re-fold one logged Δ without channel checks (the live path
        already classified it as an apply) but with the same channel
        advancement, so replayed state matches pre-crash state."""
        seq = op.get("seq")
        if seq is not None:
            self._expected_seq[op["pos"]] = seq + 1
            self._delta_log.setdefault(
                op["pos"], deque(maxlen=self._delta_log_cap)
            ).append((seq, op["op"], op["key"], op["rank"]))
        self._apply(op)

    # -- serving catch-up ----------------------------------------------
    def handle_delta_tail(self, message: Message) -> dict:
        """A restarted data bucket asks which Δs it issued past its
        durable prefix: ``(seq, action, key, rank)`` descriptors from
        the per-position ring.  The coordinator resolves these to final
        record states (payloads come from record recovery, not from
        parity symbols).  ``covered`` is False when the ring no longer
        reaches back to ``after`` + 1.
        """
        pos = message.payload["pos"]
        after = message.payload["after"]
        live = self._expected_seq.get(pos, 1) - 1
        ops: list[dict] = []
        covered = True
        if after < live:
            ring = (self._delta_log or {}).get(pos)
            next_needed = after + 1
            if ring is None:
                covered = False
            else:
                for seq, action, key, rank in ring:
                    if seq < next_needed:
                        continue
                    if seq > next_needed:
                        covered = False
                        break
                    ops.append(
                        {"seq": seq, "op": action, "key": key, "rank": rank}
                    )
                    next_needed += 1
                covered = covered and next_needed > live
        return {"covered": covered, "live": live, "ops": ops}

    # -- receiving catch-up --------------------------------------------
    def handle_catchup_parity(self, message: Message) -> dict:
        """Apply the Δs this bucket missed while down, then unfence.

        ``ops`` is each group member's WAL tail past our channel
        expectation (op dicts and columnar blocks, in sequence order).
        Everything runs through the normal channel check, so overlap
        with what we already hold dedups per-op; a gap (``stale``
        verdict) means the coordinator's coverage check was defeated by
        a concurrent channel advance — report failure so it falls back
        to a full rebuild.
        """
        applied = 0
        for entry in message.payload["ops"]:
            ops = (
                self._expand_block(entry) if "block" in entry else [entry]
            )
            for op in ops:
                verdict = self._channel_check(op)
                if verdict == "apply":
                    self._apply(op)
                    if op.get("seq") is not None:
                        self._delta_log.setdefault(
                            op["pos"], deque(maxlen=self._delta_log_cap)
                        ).append((op["seq"], op["op"], op["key"], op["rank"]))
                    applied += 1
                elif verdict == "stale":
                    return {"ok": False, "applied": applied}
        self.fenced = False
        self.stale = False
        net = self._net()
        if net.tracer is not None:
            net.tracer.emit(
                "catchup.parity", node=self.node_id, group=self.group,
                index=self.index, applied=applied,
            )
        if net.metrics is not None:
            net.metrics.counter(
                "catchup.records", "records shipped by delta catch-up"
            ).inc(applied)
        self.checkpoint_now()
        return {"ok": True, "applied": applied}
