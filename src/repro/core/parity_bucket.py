"""The LH*RS parity bucket server.

Parity bucket i of bucket group g holds one :class:`ParityRecord` per
record group (rank) of g: the fold of every member's payload scaled by
this bucket's generator-row coefficient for the member's position.

The coefficients are handed in by the coordinator at creation.  With the
normalized Cauchy generator the rows are *nested*: row i is the same for
every availability level k > i, so raising a group's k never touches
existing parity buckets — the property scalable availability leans on.
Row 0 is all ones, making parity bucket 0 a pure XOR site.

Idempotence: every sequenced Δ carries the sending data bucket's
monotonic operation sequence number, and this bucket tracks the next
expected number per group position.  A Δ below the expectation is a
retransmission and is *skipped* — folding it again would silently
corrupt the parity, since the fold is its own inverse in GF(2^w).  A Δ
above it proves this bucket missed traffic (a dropped message): it
reports itself stale to the coordinator, which rebuilds it from the
group's data.  Unsequenced Δs (coordinator encode batches) apply
unconditionally.
"""

from __future__ import annotations

from repro.core.records import ParityRecord
from repro.gf.field import GF
from repro.rs.encoder import fold_delta
from repro.sim.messages import Message
from repro.sim.node import Node


class ParityServer(Node):
    """One parity bucket of one bucket group."""

    def __init__(
        self,
        node_id: str,
        file_id: str,
        group: int,
        index: int,
        row: list[int],
        field: GF,
    ):
        super().__init__(node_id)
        self.file_id = file_id
        self.group = group
        self.index = index
        self.row = list(row)
        self.field = field
        self.records: dict[int, ParityRecord] = {}
        #: next expected Δ sequence number per group position (default 1)
        self._expected_seq: dict[int, int] = {}
        #: retransmissions skipped / gaps detected (observability)
        self.duplicates_skipped = 0
        self.gaps_detected = 0
        #: §4.1's in-bucket secondary index: member key -> rank.  Makes
        #: record recovery's locate step an O(1) lookup instead of a
        #: scan over every parity record ("shortens the bucket search
        #: time drastically" at negligible storage, as the paper notes).
        self._key_index: dict[int, int] = {}
        #: GF multiply-accumulate symbol operations performed (CPU model)
        self.symbol_ops = 0
        #: how many of those folds were coefficient-1 (pure XOR)
        self.xor_folds = 0
        self.general_folds = 0

    # ------------------------------------------------------------------
    # the Δ-record protocol
    # ------------------------------------------------------------------
    def _apply(self, op: dict) -> None:
        rank = op["rank"]
        pos = op["pos"]
        if not 0 <= pos < len(self.row):
            raise ValueError(
                f"group position {pos} outside 0..{len(self.row) - 1}"
            )
        record = self.records.get(rank)
        if record is None:
            record = ParityRecord(rank=rank)
            self.records[rank] = record

        coefficient = self.row[pos]
        record.symbols = fold_delta(
            self.field, record.symbols, coefficient, op["delta"]
        )
        self.symbol_ops += self.field.symbol_length_for_bytes(len(op["delta"]))
        if coefficient == 1:
            self.xor_folds += 1
        else:
            self.general_folds += 1

        action = op["op"]
        if action == "insert":
            record.keys[pos] = op["key"]
            record.lengths[pos] = op["length"]
            self._key_index[op["key"]] = rank
        elif action == "update":
            record.lengths[pos] = op["length"]
        elif action == "delete":
            record.keys.pop(pos, None)
            record.lengths.pop(pos, None)
            self._key_index.pop(op["key"], None)
            if not record.keys:
                # All members gone: the accumulated deltas cancel exactly.
                del self.records[rank]
        else:
            raise ValueError(f"unknown parity op {action!r}")

    def _channel_check(self, op: dict) -> str:
        """Classify one Δ against its channel: apply / duplicate / stale.

        ``apply`` advances the channel.  ``duplicate`` (seq below the
        expectation) must be skipped.  ``stale`` (seq above it) means a
        prior Δ never arrived — this bucket's content is behind its data
        and must be rebuilt, so the Δ is *not* applied either.
        Unsequenced ops (``seq`` absent/None) always apply and leave the
        channel untouched.
        """
        seq = op.get("seq")
        if seq is None:
            return "apply"
        pos = op["pos"]
        expected = self._expected_seq.get(pos, 1)
        if seq < expected:
            self.duplicates_skipped += 1
            return "duplicate"
        if seq > expected:
            self.gaps_detected += 1
            return "stale"
        self._expected_seq[pos] = expected + 1
        return "apply"

    def _report_stale(self) -> None:
        """Tell the coordinator this bucket missed Δ traffic (rebuild me)."""
        self.send(
            f"{self.file_id}.coord", "report.stale", {"node": self.node_id}
        )

    def handle_parity_update(self, message: Message) -> dict:
        """One Δ-record from a data bucket (insert/update/delete).

        The return value is the ack in ``parity_ack`` mode; plain sends
        discard it.
        """
        verdict = self._channel_check(message.payload)
        if verdict == "apply":
            self._apply(message.payload)
            return {"status": "applied"}
        if verdict == "stale":
            self._report_stale()
        return {
            "status": verdict,
            "expected": self._expected_seq.get(message.payload["pos"], 1),
        }

    def handle_parity_batch(self, message: Message) -> dict:
        """Batched Δ-records (splits, merges and encodes ship these).

        Ops in one batch share a channel and are contiguous, so the
        first stale op means every later one is too — stop and report
        once.  A trailing ``expected_seqs`` map (coordinator encode
        paths) re-bases the channels afterwards.
        """
        applied = 0
        for op in message.payload["ops"]:
            verdict = self._channel_check(op)
            if verdict == "apply":
                self._apply(op)
                applied += 1
            elif verdict == "stale":
                self._report_stale()
                return {"status": "stale", "applied": applied}
        expected = message.payload.get("expected_seqs")
        if expected:
            self._expected_seq.update(
                {int(pos): seq for pos, seq in expected.items()}
            )
        return {"status": "applied", "applied": applied}

    def handle_parity_reset(self, message: Message) -> None:
        """Close the Δ-channels of retired group positions.

        Sent by the coordinator when a data bucket dissolves in a merge
        while its group lives on.  A later split may re-create the
        bucket as a *fresh* server whose sequence counter restarts at
        zero; without the reset its Δs would arrive below the old
        channel expectation and be skipped as retransmissions.
        """
        for pos in message.payload["positions"]:
            self._expected_seq.pop(pos, None)

    # ------------------------------------------------------------------
    # queries used by recovery
    # ------------------------------------------------------------------
    def handle_parity_dump(self, message: Message) -> dict:
        """Everything this bucket knows (bucket recovery reads this)."""
        return {
            "group": self.group,
            "index": self.index,
            "records": [r.snapshot(self.field) for r in self.records.values()],
            "expected_seqs": dict(self._expected_seq),
        }

    def handle_parity_locate(self, message: Message) -> dict | None:
        """The record group containing ``key``, or None (record recovery).

        A None answer from a parity bucket is authoritative: every stored
        record of the group has an entry in every parity bucket, so the
        searched key does not exist and the key search can terminate
        *unsuccessfully with certainty* even while data buckets are down.
        """
        key = message.payload["key"]
        rank = self._key_index.get(key)
        if rank is None:
            return None
        record = self.records[rank]
        pos = next(p for p, k in record.keys.items() if k == key)
        snap = record.snapshot(self.field)
        snap["pos"] = pos
        return snap

    def handle_parity_rank(self, message: Message) -> dict | None:
        """Snapshot of one rank's parity record (or None)."""
        record = self.records.get(message.payload["rank"])
        return record.snapshot(self.field) if record else None

    def handle_parity_load(self, message: Message) -> None:
        """Bulk-load recovered content into a fresh (spare) parity bucket."""
        self.records = {
            snap["rank"]: ParityRecord.from_snapshot(snap, self.field)
            for snap in message.payload["records"]
        }
        self._key_index = {
            key: rank
            for rank, record in self.records.items()
            for key in record.keys.values()
        }
        # A rebuilt spare is encoded from the group's *current* data, so
        # every Δ the senders have issued is already reflected; adopting
        # their counters makes any in-flight retransmission a duplicate.
        self._expected_seq = {
            int(pos): seq
            for pos, seq in message.payload.get("expected_seqs", {}).items()
        }

    def handle_signature_dump(self, message: Message) -> dict:
        """Algebraic signatures of every parity record, keyed by rank."""
        from repro.gf.signatures import signature_vector

        count = message.payload.get("count", 2)
        return {
            "index": self.index,
            "ranks": {
                rank: signature_vector(
                    self.field, record.parity_bytes(self.field), count
                )
                for rank, record in self.records.items()
            },
        }

    def handle_status(self, message: Message) -> dict:
        return {
            "group": self.group,
            "index": self.index,
            "records": len(self.records),
            "parity_bytes": int(sum(r.symbols.nbytes for r in self.records.values())),
        }
