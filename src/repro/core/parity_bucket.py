"""The LH*RS parity bucket server.

Parity bucket i of bucket group g holds one :class:`ParityRecord` per
record group (rank) of g: the fold of every member's payload scaled by
this bucket's generator-row coefficient for the member's position.

The coefficients are handed in by the coordinator at creation.  With the
normalized Cauchy generator the rows are *nested*: row i is the same for
every availability level k > i, so raising a group's k never touches
existing parity buckets — the property scalable availability leans on.
Row 0 is all ones, making parity bucket 0 a pure XOR site.
"""

from __future__ import annotations

from repro.core.records import ParityRecord
from repro.gf.field import GF
from repro.rs.encoder import fold_delta
from repro.sim.messages import Message
from repro.sim.node import Node


class ParityServer(Node):
    """One parity bucket of one bucket group."""

    def __init__(
        self,
        node_id: str,
        file_id: str,
        group: int,
        index: int,
        row: list[int],
        field: GF,
    ):
        super().__init__(node_id)
        self.file_id = file_id
        self.group = group
        self.index = index
        self.row = list(row)
        self.field = field
        self.records: dict[int, ParityRecord] = {}
        #: §4.1's in-bucket secondary index: member key -> rank.  Makes
        #: record recovery's locate step an O(1) lookup instead of a
        #: scan over every parity record ("shortens the bucket search
        #: time drastically" at negligible storage, as the paper notes).
        self._key_index: dict[int, int] = {}
        #: GF multiply-accumulate symbol operations performed (CPU model)
        self.symbol_ops = 0
        #: how many of those folds were coefficient-1 (pure XOR)
        self.xor_folds = 0
        self.general_folds = 0

    # ------------------------------------------------------------------
    # the Δ-record protocol
    # ------------------------------------------------------------------
    def _apply(self, op: dict) -> None:
        rank = op["rank"]
        pos = op["pos"]
        if not 0 <= pos < len(self.row):
            raise ValueError(
                f"group position {pos} outside 0..{len(self.row) - 1}"
            )
        record = self.records.get(rank)
        if record is None:
            record = ParityRecord(rank=rank)
            self.records[rank] = record

        coefficient = self.row[pos]
        record.symbols = fold_delta(
            self.field, record.symbols, coefficient, op["delta"]
        )
        self.symbol_ops += self.field.symbol_length_for_bytes(len(op["delta"]))
        if coefficient == 1:
            self.xor_folds += 1
        else:
            self.general_folds += 1

        action = op["op"]
        if action == "insert":
            record.keys[pos] = op["key"]
            record.lengths[pos] = op["length"]
            self._key_index[op["key"]] = rank
        elif action == "update":
            record.lengths[pos] = op["length"]
        elif action == "delete":
            record.keys.pop(pos, None)
            record.lengths.pop(pos, None)
            self._key_index.pop(op["key"], None)
            if not record.keys:
                # All members gone: the accumulated deltas cancel exactly.
                del self.records[rank]
        else:
            raise ValueError(f"unknown parity op {action!r}")

    def handle_parity_update(self, message: Message) -> None:
        """One Δ-record from a data bucket (insert/update/delete)."""
        self._apply(message.payload)

    def handle_parity_batch(self, message: Message) -> None:
        """Batched Δ-records (splits and merges ship these)."""
        for op in message.payload["ops"]:
            self._apply(op)

    # ------------------------------------------------------------------
    # queries used by recovery
    # ------------------------------------------------------------------
    def handle_parity_dump(self, message: Message) -> dict:
        """Everything this bucket knows (bucket recovery reads this)."""
        return {
            "group": self.group,
            "index": self.index,
            "records": [r.snapshot(self.field) for r in self.records.values()],
        }

    def handle_parity_locate(self, message: Message) -> dict | None:
        """The record group containing ``key``, or None (record recovery).

        A None answer from a parity bucket is authoritative: every stored
        record of the group has an entry in every parity bucket, so the
        searched key does not exist and the key search can terminate
        *unsuccessfully with certainty* even while data buckets are down.
        """
        key = message.payload["key"]
        rank = self._key_index.get(key)
        if rank is None:
            return None
        record = self.records[rank]
        pos = next(p for p, k in record.keys.items() if k == key)
        snap = record.snapshot(self.field)
        snap["pos"] = pos
        return snap

    def handle_parity_rank(self, message: Message) -> dict | None:
        """Snapshot of one rank's parity record (or None)."""
        record = self.records.get(message.payload["rank"])
        return record.snapshot(self.field) if record else None

    def handle_parity_load(self, message: Message) -> None:
        """Bulk-load recovered content into a fresh (spare) parity bucket."""
        self.records = {
            snap["rank"]: ParityRecord.from_snapshot(snap, self.field)
            for snap in message.payload["records"]
        }
        self._key_index = {
            key: rank
            for rank, record in self.records.items()
            for key in record.keys.values()
        }

    def handle_signature_dump(self, message: Message) -> dict:
        """Algebraic signatures of every parity record, keyed by rank."""
        from repro.gf.signatures import signature_vector

        count = message.payload.get("count", 2)
        return {
            "index": self.index,
            "ranks": {
                rank: signature_vector(
                    self.field, record.parity_bytes(self.field), count
                )
                for rank, record in self.records.items()
            },
        }

    def handle_status(self, message: Message) -> dict:
        return {
            "group": self.group,
            "index": self.index,
            "records": len(self.records),
            "parity_bytes": int(sum(r.symbols.nbytes for r in self.records.values())),
        }
