"""The LH*RS parity bucket server.

Parity bucket i of bucket group g holds one :class:`ParityRecord` per
record group (rank) of g: the fold of every member's payload scaled by
this bucket's generator-row coefficient for the member's position.

The coefficients are handed in by the coordinator at creation.  With the
normalized Cauchy generator the rows are *nested*: row i is the same for
every availability level k > i, so raising a group's k never touches
existing parity buckets — the property scalable availability leans on.
Row 0 is all ones, making parity bucket 0 a pure XOR site.

Idempotence: every sequenced Δ carries the sending data bucket's
monotonic operation sequence number, and this bucket tracks the next
expected number per group position.  A Δ below the expectation is a
retransmission and is *skipped* — folding it again would silently
corrupt the parity, since the fold is its own inverse in GF(2^w).  A Δ
above it proves this bucket missed traffic (a dropped message): it
reports itself stale to the coordinator, which rebuilds it from the
group's data.  Unsequenced Δs (coordinator encode batches) apply
unconditionally.

Storage comes in two layouts.  The classic one keeps one numpy array per
parity record.  With ``stripe_store=True`` (the file default) all
records pack into one contiguous :class:`~repro.core.stripe_store.
StripeStore` matrix with a rank→row map; ``record.symbols`` are then row
*views*, dumps render the whole bucket in one bytes pass, signature
scans run as one 2D kernel, and bulk encode batches land as one
``gf_matmul`` over the stacked Δ matrix.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import ParityRecord
from repro.core.stripe_store import StripeStore
from repro.gf.field import GF
from repro.rs.encoder import fold_delta
from repro.sim.messages import Message
from repro.sim.network import NodeUnavailable, UnknownNode
from repro.sim.node import Node


class ParityServer(Node):
    """One parity bucket of one bucket group."""

    def __init__(
        self,
        node_id: str,
        file_id: str,
        group: int,
        index: int,
        row: list[int],
        field: GF,
        stripe_store: bool = False,
    ):
        super().__init__(node_id)
        self.file_id = file_id
        self.group = group
        self.index = index
        self.row = list(row)
        self.field = field
        self.records: dict[int, ParityRecord] = {}
        #: contiguous stripe layout (None = one array per record)
        self._store: StripeStore | None = (
            StripeStore(field) if stripe_store else None
        )
        #: next expected Δ sequence number per group position (default 1)
        self._expected_seq: dict[int, int] = {}
        #: retransmissions skipped / gaps detected (observability)
        self.duplicates_skipped = 0
        self.gaps_detected = 0
        #: sticky gap marker: this bucket's content is behind its data.
        #: Surfaced in status replies so the probe loop rebuilds the
        #: bucket even when the report.stale was lost (coordinator down).
        self.stale = False
        #: newest coordinator state checkpoint (HA header; see
        #: RSCoordinator.checkpoint_to_parity)
        self.coord_checkpoint: dict | None = None
        #: §4.1's in-bucket secondary index: member key -> (rank, pos).
        #: Makes record recovery's locate step an O(1) lookup instead of
        #: a scan over every parity record ("shortens the bucket search
        #: time drastically" at negligible storage, as the paper notes);
        #: carrying the position too removes the per-locate scan over
        #: the record's key directory.
        self._key_index: dict[int, tuple[int, int]] = {}
        #: GF multiply-accumulate symbol operations performed (CPU model)
        self.symbol_ops = 0
        #: how many of those folds were coefficient-1 (pure XOR)
        self.xor_folds = 0
        self.general_folds = 0

    # ------------------------------------------------------------------
    # storage layout helpers
    # ------------------------------------------------------------------
    def _fold_into(self, record: ParityRecord, coefficient: int, delta: bytes) -> None:
        """Fold one Δ into a record under the active storage layout."""
        if self._store is None:
            record.symbols = fold_delta(
                self.field, record.symbols, coefficient, delta
            )
            return
        needed = self.field.symbol_length_for_bytes(len(delta))
        length = max(needed, len(record.symbols))
        if self._store.ensure(record.rank, length):
            self._refresh_views()
        view = self._store.view(record.rank)
        self.field.scale_accumulate(view, coefficient, delta)
        record.symbols = view

    def _refresh_views(self) -> None:
        """Re-bind every record's symbols view after a store reallocation."""
        assert self._store is not None
        for rank, record in self.records.items():
            record.symbols = self._store.view(rank)

    def _drop_record(self, rank: int) -> None:
        del self.records[rank]
        if self._store is not None and rank in self._store:
            self._store.release(rank)

    def _count_fold(self, coefficient: int, delta_len: int) -> None:
        self.symbol_ops += self.field.symbol_length_for_bytes(delta_len)
        if coefficient == 1:
            self.xor_folds += 1
        else:
            self.general_folds += 1

    # ------------------------------------------------------------------
    # the Δ-record protocol
    # ------------------------------------------------------------------
    def _apply(self, op: dict) -> None:
        rank = op["rank"]
        pos = op["pos"]
        if not 0 <= pos < len(self.row):
            raise ValueError(
                f"group position {pos} outside 0..{len(self.row) - 1}"
            )
        # Validate the action BEFORE touching any state: folding the Δ
        # first and raising after would leave corrupted parity behind an
        # exception the sender may retry past.
        action = op["op"]
        if action not in ("insert", "update", "delete"):
            raise ValueError(f"unknown parity op {action!r}")
        record = self.records.get(rank)
        created = record is None
        if created:
            record = ParityRecord(rank=rank)
            self.records[rank] = record

        coefficient = self.row[pos]
        try:
            self._fold_into(record, coefficient, op["delta"])
        except BaseException:
            if created:
                # Crash between row allocation and directory insert: roll
                # the allocation back so parity.locate / parity.dump
                # never see a half-born record.
                self._drop_record(rank)
            raise
        self._count_fold(coefficient, len(op["delta"]))

        if action == "insert":
            record.keys[pos] = op["key"]
            record.lengths[pos] = op["length"]
            self._key_index[op["key"]] = (rank, pos)
        elif action == "update":
            record.lengths[pos] = op["length"]
        else:  # delete
            record.keys.pop(pos, None)
            record.lengths.pop(pos, None)
            self._key_index.pop(op["key"], None)
            if not record.keys:
                # All members gone: the accumulated deltas cancel exactly.
                self._drop_record(rank)

    def _channel_check(self, op: dict) -> str:
        """Classify one Δ against its channel: apply / duplicate / stale.

        ``apply`` advances the channel.  ``duplicate`` (seq below the
        expectation) must be skipped.  ``stale`` (seq above it) means a
        prior Δ never arrived — this bucket's content is behind its data
        and must be rebuilt, so the Δ is *not* applied either.
        Unsequenced ops (``seq`` absent/None) always apply and leave the
        channel untouched.
        """
        seq = op.get("seq")
        if seq is None:
            return "apply"
        pos = op["pos"]
        expected = self._expected_seq.get(pos, 1)
        if seq < expected:
            self.duplicates_skipped += 1
            verdict = "duplicate"
        elif seq > expected:
            self.gaps_detected += 1
            self.stale = True
            verdict = "stale"
        else:
            self._expected_seq[pos] = expected + 1
            verdict = "apply"
        tracer = self.network.tracer if self.network is not None else None
        if tracer is not None:
            tracer.emit(
                "parity.delta",
                node=self.node_id,
                pos=pos,
                seq=seq,
                expected=expected,
                verdict=verdict,
                op=op["op"],
            )
        return verdict

    def _report_stale(self) -> None:
        """Tell the coordinator this bucket missed Δ traffic (rebuild me).

        A down coordinator is tolerated: the staleness stays in
        :attr:`stale` and the next probe round (post-takeover) sweeps
        it up from the status reply instead.
        """
        try:
            self.send(
                f"{self.file_id}.coord", "report.stale", {"node": self.node_id}
            )
        except (NodeUnavailable, UnknownNode):
            pass

    # ------------------------------------------------------------------
    # coordinator-state checkpoints (HA headers)
    # ------------------------------------------------------------------
    def handle_coord_checkpoint(self, message: Message) -> None:
        """Store the coordinator's state snapshot (newest LSN wins)."""
        checkpoint = message.payload
        if (
            self.coord_checkpoint is None
            or checkpoint["lsn"] >= self.coord_checkpoint["lsn"]
        ):
            self.coord_checkpoint = dict(checkpoint)

    def handle_coord_checkpoint_fetch(self, message: Message) -> dict | None:
        """Return the stored coordinator checkpoint (None = never saw one)."""
        if self.coord_checkpoint is None:
            return None
        return dict(self.coord_checkpoint)

    def handle_parity_update(self, message: Message) -> dict:
        """One Δ-record from a data bucket (insert/update/delete).

        The return value is the ack in ``parity_ack`` mode; plain sends
        discard it.
        """
        verdict = self._channel_check(message.payload)
        if verdict == "apply":
            self._apply(message.payload)
            return {"status": "applied"}
        if verdict == "stale":
            self._report_stale()
        return {
            "status": verdict,
            "expected": self._expected_seq.get(message.payload["pos"], 1),
        }

    # ------------------------------------------------------------------
    # batch application
    # ------------------------------------------------------------------
    def _bulk_encodable(self, ops: list[dict]) -> bool:
        """Whole-group encode batches can skip the per-op fold loop.

        Eligible when this bucket is empty and every op is an
        unsequenced insert hitting a distinct (rank, pos) slot — exactly
        what the coordinator's parity (re)build paths ship.
        """
        if self.records or not ops:
            return False
        seen: set[tuple[int, int]] = set()
        for op in ops:
            if op.get("seq") is not None or op["op"] != "insert":
                return False
            if not 0 <= op["pos"] < len(self.row):
                return False  # per-op path raises the proper ValueError
            slot = (op["rank"], op["pos"])
            if slot in seen:
                return False
            seen.add(slot)
        return True

    def _bulk_encode(self, ops: list[dict]) -> int:
        """Encode a whole-group insert batch as one 2D kernel call.

        Packs the Δ payloads into an (m x nranks x L) tensor and applies
        this bucket's generator row with a single ``gf_matmul`` — one
        table gather + XOR per coefficient instead of one fold dispatch
        per record.  Bit-exact with the per-op path (verified by the
        stripe property tests); the symbol-op accounting still charges
        the per-record work actually done.
        """
        field = self.field
        m = len(self.row)
        by_rank: dict[int, list[dict]] = {}
        for op in ops:
            by_rank.setdefault(op["rank"], []).append(op)
        ranks = sorted(by_rank)
        length = max(
            field.symbol_length_for_bytes(len(op["delta"])) for op in ops
        )
        grid: list[list[bytes | None]] = [[None] * len(ranks) for _ in range(m)]
        for r, rank in enumerate(ranks):
            for op in by_rank[rank]:
                grid[op["pos"]][r] = op["delta"]
        stacked = np.stack(
            [field.stack_payloads(column, length) for column in grid]
        )
        parity = field.gf_matmul([self.row], stacked)[0]

        for r, rank in enumerate(ranks):
            record = ParityRecord(rank=rank)
            stripe = max(
                field.symbol_length_for_bytes(len(op["delta"]))
                for op in by_rank[rank]
            )
            if self._store is None:
                record.symbols = parity[r, :stripe].copy()
            else:
                if self._store.ensure(rank, stripe):
                    self._refresh_views()
                self._store.view(rank)[:] = parity[r, :stripe]
                record.symbols = self._store.view(rank)
            for op in by_rank[rank]:
                pos = op["pos"]
                record.keys[pos] = op["key"]
                record.lengths[pos] = op["length"]
                self._key_index[op["key"]] = (rank, pos)
                self._count_fold(self.row[pos], len(op["delta"]))
            self.records[rank] = record
        return len(ops)

    def handle_parity_batch(self, message: Message) -> dict:
        """Batched Δ-records (splits, merges and encodes ship these).

        Whole-group encode batches (fresh bucket, unsequenced inserts)
        take the 2D bulk path.  Otherwise ops apply one by one: ops in
        one batch share a channel and are contiguous, so the first stale
        op means every later one is too — stop and report once.  A
        trailing ``expected_seqs`` map (coordinator encode paths)
        re-bases the channels afterwards.
        """
        ops = message.payload["ops"]
        tracer = self.network.tracer if self.network is not None else None
        if tracer is not None:
            tracer.emit(
                "parity.batch", node=self.node_id, ops=len(ops)
            )
        if self._bulk_encodable(ops):
            applied = self._bulk_encode(ops)
        else:
            applied = 0
            for op in ops:
                verdict = self._channel_check(op)
                if verdict == "apply":
                    self._apply(op)
                    applied += 1
                elif verdict == "stale":
                    self._report_stale()
                    return {"status": "stale", "applied": applied}
        expected = message.payload.get("expected_seqs")
        if expected:
            self._expected_seq.update(
                {int(pos): seq for pos, seq in expected.items()}
            )
        return {"status": "applied", "applied": applied}

    def handle_parity_reset(self, message: Message) -> None:
        """Close the Δ-channels of retired group positions.

        Sent by the coordinator when a data bucket dissolves in a merge
        while its group lives on.  A later split may re-create the
        bucket as a *fresh* server whose sequence counter restarts at
        zero; without the reset its Δs would arrive below the old
        channel expectation and be skipped as retransmissions.
        """
        positions = message.payload["positions"]
        tracer = self.network.tracer if self.network is not None else None
        if tracer is not None:
            tracer.emit(
                "parity.reset", node=self.node_id, positions=list(positions)
            )
        for pos in positions:
            self._expected_seq.pop(pos, None)

    # ------------------------------------------------------------------
    # queries used by recovery
    # ------------------------------------------------------------------
    def _snapshots(self) -> list[dict]:
        """Snapshot every record; one contiguous bytes pass with a store."""
        if self._store is None:
            return [r.snapshot(self.field) for r in self.records.values()]
        payloads = self._store.row_bytes()
        return [
            {
                "rank": rank,
                "keys": dict(record.keys),
                "lengths": dict(record.lengths),
                "parity": payloads.get(rank, b""),
            }
            for rank, record in self.records.items()
        ]

    def handle_parity_dump(self, message: Message) -> dict:
        """Everything this bucket knows (bucket recovery reads this)."""
        return {
            "group": self.group,
            "index": self.index,
            "records": self._snapshots(),
            "expected_seqs": dict(self._expected_seq),
        }

    def handle_parity_locate(self, message: Message) -> dict | None:
        """The record group containing ``key``, or None (record recovery).

        A None answer from a parity bucket is authoritative: every stored
        record of the group has an entry in every parity bucket, so the
        searched key does not exist and the key search can terminate
        *unsuccessfully with certainty* even while data buckets are down.
        """
        key = message.payload["key"]
        entry = self._key_index.get(key)
        if entry is None:
            return None
        rank, pos = entry
        record = self.records[rank]
        snap = record.snapshot(self.field)
        snap["pos"] = pos
        return snap

    def handle_parity_rank(self, message: Message) -> dict | None:
        """Snapshot of one rank's parity record (or None)."""
        record = self.records.get(message.payload["rank"])
        return record.snapshot(self.field) if record else None

    def handle_parity_load(self, message: Message) -> None:
        """Bulk-load recovered content into a fresh (spare) parity bucket."""
        snaps = message.payload["records"]
        self.records = {
            snap["rank"]: ParityRecord(
                rank=snap["rank"],
                keys=dict(snap["keys"]),
                lengths=dict(snap["lengths"]),
            )
            for snap in snaps
        }
        if self._store is None:
            for snap in snaps:
                self.records[snap["rank"]].symbols = (
                    self.field.symbols_from_bytes(snap["parity"])
                )
        else:
            self._store.bulk_load(
                [(snap["rank"], snap["parity"]) for snap in snaps]
            )
            self._refresh_views()
        self._key_index = {
            key: (rank, pos)
            for rank, record in self.records.items()
            for pos, key in record.keys.items()
        }
        # A rebuilt spare is encoded from the group's *current* data, so
        # every Δ the senders have issued is already reflected; adopting
        # their counters makes any in-flight retransmission a duplicate.
        self._expected_seq = {
            int(pos): seq
            for pos, seq in message.payload.get("expected_seqs", {}).items()
        }

    def handle_signature_dump(self, message: Message) -> dict:
        """Algebraic signatures of every parity record, keyed by rank.

        With the stripe store the whole bucket is one stacked matrix and
        the signatures come out of one vectorized pass per signature
        symbol (zero padding contributes nothing to a signature).
        """
        count = message.payload.get("count", 2)
        if self._store is not None:
            from repro.gf.signatures import signature_matrix

            ranks, matrix = self._store.stacked()
            vectors = signature_matrix(self.field, matrix, count)
            return {
                "index": self.index,
                "ranks": dict(zip(ranks, vectors)),
            }
        from repro.gf.signatures import signature_vector

        return {
            "index": self.index,
            "ranks": {
                rank: signature_vector(
                    self.field, record.parity_bytes(self.field), count
                )
                for rank, record in self.records.items()
            },
        }

    def handle_status(self, message: Message) -> dict:
        return {
            "group": self.group,
            "index": self.index,
            "records": len(self.records),
            "parity_bytes": int(sum(r.symbols.nbytes for r in self.records.values())),
            "stale": self.stale,
        }
