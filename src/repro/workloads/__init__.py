"""Workload and failure-trace generation for experiments.

Key streams (uniform / sequential / zipf / clustered), payload shapes
(fixed / variable / record-like), operation mixes, and failure schedules
— everything stochastic is seeded through `repro.sim.rng` so every
benchmark run is reproducible.
"""

from repro.workloads.generator import (
    KeyStream,
    OperationMix,
    PayloadShape,
    generate_operations,
)
from repro.workloads.traces import FailureEvent, FailureSchedule, run_trace

__all__ = [
    "KeyStream",
    "PayloadShape",
    "OperationMix",
    "generate_operations",
    "FailureEvent",
    "FailureSchedule",
    "run_trace",
]
