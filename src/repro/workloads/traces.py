"""Failure traces: when which nodes become unavailable or return.

A :class:`FailureSchedule` is a list of events pinned to operation
indices; :func:`run_trace` drives a file through an operation stream
while applying the schedule — the harness behind the failure-injection
experiments (E7/E8) and the fault-tolerant-KV example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.sim.rng import make_rng


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled change of a node's availability."""

    at_operation: int
    node_id: str
    action: str = "fail"  # or "restore"

    def __post_init__(self) -> None:
        if self.action not in ("fail", "restore"):
            raise ValueError(f"unknown action {self.action!r}")


@dataclass
class FailureSchedule:
    """An ordered list of failure events."""

    events: list[FailureEvent] = field(default_factory=list)

    def fail(self, at_operation: int, node_id: str) -> "FailureSchedule":
        self.events.append(FailureEvent(at_operation, node_id, "fail"))
        return self

    def restore(self, at_operation: int, node_id: str) -> "FailureSchedule":
        self.events.append(FailureEvent(at_operation, node_id, "restore"))
        return self

    @classmethod
    def random_bursts(
        cls,
        candidates: list[str],
        operations: int,
        bursts: int,
        burst_size: int = 1,
        seed: int | None = None,
    ) -> "FailureSchedule":
        """``bursts`` random failure bursts over an operation stream."""
        rng = make_rng(seed)
        schedule = cls()
        for _ in range(bursts):
            at = int(rng.integers(0, max(operations, 1)))
            picks = rng.choice(
                len(candidates), size=min(burst_size, len(candidates)),
                replace=False,
            )
            for i in picks:
                schedule.fail(at, candidates[int(i)])
        schedule.events.sort(key=lambda e: e.at_operation)
        return schedule

    def due(self, operation_index: int) -> list[FailureEvent]:
        """Events scheduled at exactly this operation index."""
        return [e for e in self.events if e.at_operation == operation_index]


def run_trace(
    file: Any,
    operations: Iterable[tuple[str, int, bytes | None]],
    schedule: FailureSchedule | None = None,
) -> dict:
    """Drive ``file`` through an operation stream under a failure trace.

    ``file`` is any scheme facade (LHRSFile, LHMFile, ...).  Returns a
    summary with per-operation counts and observed search misses.
    """
    schedule = schedule or FailureSchedule()
    counts = {"insert": 0, "search": 0, "update": 0, "delete": 0}
    misses = 0
    for index, (op, key, payload) in enumerate(operations):
        for event in schedule.due(index):
            if event.action == "fail":
                if file.network.is_available(event.node_id):
                    file.network.fail(event.node_id)
            else:
                file.network.restore(event.node_id)
        if op == "insert":
            file.insert(key, payload)
        elif op == "update":
            file.update(key, payload)
        elif op == "delete":
            file.delete(key)
        else:
            if not file.search(key).found:
                misses += 1
        counts[op] += 1
    return {"counts": counts, "search_misses": misses}
