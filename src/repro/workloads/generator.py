"""Key streams, payload shapes, and operation mixes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.sim.rng import make_rng


@dataclass(frozen=True)
class KeyStream:
    """A reproducible stream of integer keys.

    ``kind``:
      * ``"uniform"`` — unique uniform draws from [0, key_space) — the
        papers' standard assumption (hash functions spread them evenly);
      * ``"sequential"`` — 0, 1, 2, ... (adversarial for image
        convergence, still uniform across buckets for mod hashing);
      * ``"zipf"`` — skewed popularity (duplicates likely; pair with
        upsert semantics);
      * ``"clustered"`` — runs of adjacent keys from random anchors.
    """

    kind: str = "uniform"
    key_space: int = 10**9
    zipf_s: float = 1.3
    cluster_span: int = 64
    seed: int | None = None

    def generate(self, count: int) -> list[int]:
        """``count`` keys from the stream."""
        rng = make_rng(self.seed)
        if self.kind == "uniform":
            return [int(k) for k in rng.choice(self.key_space, size=count,
                                               replace=False)]
        if self.kind == "sequential":
            return list(range(count))
        if self.kind == "zipf":
            draws = rng.zipf(self.zipf_s, size=count)
            return [int(d) % self.key_space for d in draws]
        if self.kind == "clustered":
            keys = []
            while len(keys) < count:
                anchor = int(rng.integers(0, self.key_space))
                run = int(rng.integers(1, self.cluster_span))
                keys.extend(range(anchor, anchor + run))
            return keys[:count]
        raise ValueError(f"unknown key stream kind {self.kind!r}")


@dataclass(frozen=True)
class PayloadShape:
    """Reproducible payload generation.

    ``kind``: ``"fixed"`` (every payload ``size`` bytes), ``"variable"``
    (uniform in [min_size, max_size]), or ``"record"`` (a structured
    tuple of fields serialized to bytes, like the papers' tuples).
    """

    kind: str = "fixed"
    size: int = 100
    min_size: int = 16
    max_size: int = 256
    seed: int | None = None

    def generate(self, keys: list[int]) -> list[bytes]:
        """One payload per key."""
        rng = make_rng(self.seed)
        if self.kind == "fixed":
            return [self._fill(key, self.size) for key in keys]
        if self.kind == "variable":
            sizes = rng.integers(self.min_size, self.max_size + 1,
                                 size=len(keys))
            return [self._fill(key, int(s)) for key, s in zip(keys, sizes)]
        if self.kind == "record":
            return [
                b"|".join(
                    [
                        key.to_bytes(8, "big"),
                        f"name-{key % 9973}".encode(),
                        int(rng.integers(0, 120)).to_bytes(1, "big"),
                        f"city-{key % 211}".encode(),
                    ]
                )
                for key in keys
            ]
        raise ValueError(f"unknown payload shape {self.kind!r}")

    @staticmethod
    def _fill(key: int, size: int) -> bytes:
        seed_bytes = key.to_bytes(8, "big")
        repeats = size // 8 + 1
        return (seed_bytes * repeats)[:size]


@dataclass(frozen=True)
class OperationMix:
    """Weights of an operation mix (normalized at use)."""

    insert: float = 1.0
    search: float = 0.0
    update: float = 0.0
    delete: float = 0.0

    def weights(self) -> np.ndarray:
        raw = np.array(
            [self.insert, self.search, self.update, self.delete], dtype=float
        )
        total = raw.sum()
        if total <= 0:
            raise ValueError("operation mix needs at least one positive weight")
        return raw / total


OPS = ("insert", "search", "update", "delete")


def generate_operations(
    count: int,
    mix: OperationMix,
    keys: KeyStream | None = None,
    payloads: PayloadShape | None = None,
    seed: int | None = None,
) -> Iterator[tuple[str, int, bytes | None]]:
    """Yield ``(op, key, payload-or-None)`` tuples.

    Searches/updates/deletes draw from the keys inserted so far (a fresh
    key when none exist yet, modelling misses).
    """
    rng = make_rng(seed)
    key_stream = iter((keys or KeyStream(seed=seed)).generate(count))
    shape = payloads or PayloadShape(seed=seed)
    live: list[int] = []
    choices = rng.choice(len(OPS), size=count, p=mix.weights())
    for pick in choices:
        op = OPS[int(pick)]
        if op == "insert" or not live:
            try:
                key = next(key_stream)
            except StopIteration:
                op, key = "search", live[int(rng.integers(0, len(live)))]
                yield op, key, None
                continue
            if op == "insert":
                live.append(key)
                yield "insert", key, shape.generate([key])[0]
                continue
            yield op, key, (shape.generate([key])[0] if op == "update" else None)
            continue
        key = live[int(rng.integers(0, len(live)))]
        if op == "delete":
            live.remove(key)
            yield "delete", key, None
        elif op == "update":
            yield "update", key, shape.generate([key])[0]
        else:
            yield "search", key, None
