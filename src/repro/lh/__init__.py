"""Linear hashing (LH / LH*) addressing mathematics.

This subpackage holds the *algorithmic* heart of the LH* family, free of
any networking: the dynamic hash family ``h_l(c) = c mod 2^l N``, the LH*
client addressing algorithm (A1), the server address verification and
forwarding rule (A2), the client image adjustment (A3), the file state
(n, i) and its split sequence, and the bucket record container.

The distributed layers (`repro.sdds`, `repro.core`) call into these
functions; the unit tests here pin the published correctness properties
(two-hop forwarding bound, image convergence, split determinism).
"""

from repro.lh.addressing import (
    adjust_image,
    bucket_level,
    h,
    lh_address,
    server_action,
    split_records,
)
from repro.lh.bucket import Bucket, BucketFullError
from repro.lh.image import ClientImage
from repro.lh.state import FileState

__all__ = [
    "h",
    "lh_address",
    "server_action",
    "adjust_image",
    "bucket_level",
    "split_records",
    "Bucket",
    "BucketFullError",
    "ClientImage",
    "FileState",
]
