"""The LH* file state (n, i) and its deterministic split sequence.

The file state lives at the coordinator (bucket 0's node in LH*RS) and is
deliberately *not* shared with clients — they work from possibly stale
images (`repro.lh.image`).  Splits follow the linear-hashing order
0; 0,1; 0..3; ... with the split pointer n cycling through each round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lh import addressing


@dataclass
class FileState:
    """Mutable LH* file state.

    Attributes
    ----------
    n0:
        Initial number of buckets N (LH*RS uses the bucket-group size m
        here so bucket group 0 is complete from the start).
    n:
        Split pointer — the next bucket to split.
    i:
        File level.
    """

    n0: int = 1
    n: int = 0
    i: int = 0
    splits_done: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.n0 < 1:
            raise ValueError("initial bucket count must be >= 1")

    # ------------------------------------------------------------------
    @property
    def bucket_count(self) -> int:
        """Current number of buckets M = n + 2^i N."""
        return self.n + (1 << self.i) * self.n0

    def address(self, key: int) -> int:
        """Correct bucket address for ``key`` (Algorithm A1)."""
        return addressing.lh_address(key, self.n, self.i, self.n0)

    def level_of(self, m: int) -> int:
        """Bucket level j_m under the current state."""
        return addressing.bucket_level(m, self.n, self.i, self.n0)

    def buckets(self) -> range:
        """All existing bucket numbers."""
        return range(self.bucket_count)

    # ------------------------------------------------------------------
    def next_split(self) -> tuple[int, int, int]:
        """Describe (without performing) the next split.

        Returns ``(splitting_bucket, new_bucket, new_level)``: bucket n
        splits into itself and ``n + 2^i N``, both ending at level
        ``i + 1``.
        """
        source = self.n
        target = self.n + (1 << self.i) * self.n0
        return source, target, self.i + 1

    def advance_split(self) -> tuple[int, int, int]:
        """Perform the bookkeeping of one split and return its description.

        Moves the split pointer; when the pointer wraps, the file level
        increments (one doubling round is complete).
        """
        description = self.next_split()
        self.n += 1
        if self.n >= (1 << self.i) * self.n0:
            self.n = 0
            self.i += 1
        self.splits_done += 1
        return description

    def retreat_merge(self) -> tuple[int, int, int]:
        """Perform the bookkeeping of one bucket *merge* (inverse split).

        The last bucket of the file is reabsorbed by the bucket whose
        split created it.  Returns ``(source, target, level)``: bucket
        ``target`` (the current last bucket) merges back into bucket
        ``source``, whose level returns to ``level``.  Exact inverse of
        :meth:`advance_split`.
        """
        if self.n == 0 and self.i == 0:
            raise ValueError("cannot shrink below the initial buckets")
        if self.n == 0:
            self.i -= 1
            self.n = (1 << self.i) * self.n0 - 1
        else:
            self.n -= 1
        source = self.n
        target = source + (1 << self.i) * self.n0
        self.splits_done -= 1
        return source, target, self.i

    def copy(self) -> "FileState":
        return FileState(n0=self.n0, n=self.n, i=self.i, splits_done=self.splits_done)

    def as_tuple(self) -> tuple[int, int]:
        """The (n, i) pair as the papers write it."""
        return self.n, self.i
