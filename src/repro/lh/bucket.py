"""The bucket record container shared by every scheme in this repo.

A bucket stores records as an insertion-ordered ``{key: value}`` map and
carries its LH* bucket level ``j``.  Capacity is a *soft* limit: LH*
buckets accept the overflowing insert and report the overflow to the
coordinator, which decides whether to split (possibly a different
bucket), so a bucket can transiently exceed ``capacity``.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any


class BucketFullError(RuntimeError):
    """Raised only by fixed-capacity variants that refuse overflow."""


class Bucket:
    """An LH* bucket: a bounded record store at one server."""

    __slots__ = ("number", "level", "capacity", "records")

    def __init__(self, number: int, level: int, capacity: int):
        if capacity < 1:
            raise ValueError("bucket capacity must be >= 1")
        self.number = number
        self.level = level
        self.capacity = capacity
        self.records: dict[int, Any] = {}

    # ------------------------------------------------------------------
    def put(self, key: int, value: Any) -> bool:
        """Insert or overwrite; returns True if the key was new."""
        fresh = key not in self.records
        self.records[key] = value
        return fresh

    def get(self, key: int) -> Any:
        """Value for ``key``; raises ``KeyError`` when absent."""
        return self.records[key]

    def delete(self, key: int) -> Any:
        """Remove and return the value; raises ``KeyError`` when absent."""
        return self.records.pop(key)

    def __contains__(self, key: int) -> bool:
        return key in self.records

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[int]:
        return iter(self.records)

    # ------------------------------------------------------------------
    @property
    def overflowing(self) -> bool:
        """True when the bucket holds more than its capacity."""
        return len(self.records) > self.capacity

    @property
    def load_factor(self) -> float:
        """Occupancy relative to capacity."""
        return len(self.records) / self.capacity

    def __repr__(self) -> str:
        return (
            f"Bucket(number={self.number}, level={self.level}, "
            f"{len(self.records)}/{self.capacity} records)"
        )
