"""LH* addressing algorithms A1, A2, A3 and the split partition rule.

Notation follows the LH* papers: a file that started with N buckets has
*file level* i and *split pointer* n; bucket m carries *bucket level*
j_m.  The linear hash family is ``h_l(c) = c mod (2^l * N)``.

* (A1) — client/coordinator addressing from a file state or image:
  ``a = h_i(c); if a < n: a = h_{i+1}(c)``.
* (A2) — server-side verification: bucket ``a`` receiving key ``c``
  accepts iff ``h_j(c) == a``; otherwise it forwards to
  ``a' = h_j(c)`` unless ``a'' = h_{j-1}(c)`` satisfies
  ``a < a'' < a'``, in which case it forwards to ``a''``.  This rule
  guarantees delivery in at most two hops regardless of how stale the
  sender's image is.
* (A3) — image adjustment on an IAM carrying the level ``j`` of the
  correct server ``a``: ``if j > i': i' = j - 1; n' = a + 1; if
  n' >= 2^{i'} N: n' = 0; i' += 1``.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TypeVar

K = TypeVar("K")


def h(level: int, key: int, n0: int = 1) -> int:
    """The linear-hash function ``h_level(key) = key mod (2^level * n0)``."""
    if level < 0:
        raise ValueError("hash level cannot be negative")
    if n0 < 1:
        raise ValueError("initial bucket count n0 must be >= 1")
    return key % ((1 << level) * n0)


def lh_address(key: int, n: int, i: int, n0: int = 1) -> int:
    """Algorithm (A1): the address for ``key`` under file state (n, i)."""
    a = h(i, key, n0)
    if a < n:
        a = h(i + 1, key, n0)
    return a


def server_action(key: int, m: int, j: int, n0: int = 1) -> tuple[bool, int | None]:
    """Algorithm (A2): what bucket ``m`` at level ``j`` does with ``key``.

    Returns ``(accept, forward_to)``: ``(True, None)`` when the key
    belongs here, else ``(False, address)`` of the next hop.
    """
    a_prime = h(j, key, n0)
    if a_prime == m:
        return True, None
    a_second = h(j - 1, key, n0) if j > 0 else a_prime
    if m < a_second < a_prime:
        a_prime = a_second
    return False, a_prime


def adjust_image(i_image: int, n_image: int, j_server: int, a_server: int,
                 n0: int = 1) -> tuple[int, int]:
    """Algorithm (A3): new client image ``(i', n')`` after an IAM.

    ``j_server`` and ``a_server`` are the level and address of the server
    that finally accepted the forwarded request.  The image moves to the
    *minimal file state consistent with bucket a having level j* — i.e.
    the split creating (or re-levelling) bucket ``a`` is the most recent
    one the client can infer.  Two consequences the protocols rely on:

    * the image never points past the real file, so a client never
      addresses a nonexistent bucket in steady state (the coordinator
      routing fallback still exists for servers lost to failures), and
    * the same addressing error cannot repeat, giving expected O(log M)
      IAMs for a fresh client under a random key workload.

    The compressed rendering of A3 in the papers ("n' = a+1; if n' >=
    2^i' then n' = 0, i' += 1") over-approximates for new-round buckets
    (a >= 2^{i'} N), leaving images that claim buckets not yet created;
    the minimal-state form used here infers n' = a - 2^{i'} N + 1 for
    those, which is exactly the split pointer position their creation
    proves.
    """
    if j_server <= i_image:
        return i_image, n_image
    i_new = j_server - 1
    n_new = a_server + 1
    boundary = (1 << i_new) * n0
    if n_new > boundary:
        # a_server is a new-round bucket, split off a_server - boundary;
        # the pointer is only known to have passed that source bucket.
        n_new -= boundary
    if n_new >= boundary:
        # The whole round is complete; the next one has begun.
        n_new = 0
        i_new += 1
    # Never regress: keep whichever image describes the larger file.
    if file_extent(n_new, i_new, n0) <= file_extent(n_image, i_image, n0):
        return i_image, n_image
    return i_new, n_new


def file_extent(n: int, i: int, n0: int = 1) -> int:
    """Bucket count ``M = n + 2^i * N`` of a file (or image) at state (n, i).

    Identity E1 of the paper family — the single place the expected
    bucket count is derived from a file state.  Client images, the scan
    termination check and the A3 no-regress comparison all call this.
    """
    return n + (1 << i) * n0


def bucket_level(m: int, n: int, i: int, n0: int = 1) -> int:
    """Level j_m of bucket m under file state (n, i).

    Buckets already split this round (m < n) and their split images
    (m >= 2^i N) are at level i + 1; the rest are still at level i.
    """
    if m < 0:
        raise ValueError("bucket numbers are non-negative")
    boundary = (1 << i) * n0
    if m >= boundary + n:
        raise ValueError(f"bucket {m} does not exist under state (n={n}, i={i})")
    if m < n or m >= boundary:
        return i + 1
    return i


def split_records(
    keys: Iterable[K],
    key_of, m: int, j: int, n0: int = 1,
) -> tuple[list[K], list[K]]:
    """Partition bucket ``m``'s records for its split to level ``j + 1``.

    ``key_of`` maps an item to its integer key.  Returns
    ``(stay, move)``: items hashing to ``m`` under ``h_{j+1}`` stay,
    the rest (which hash to ``m + 2^j N``) move to the new bucket.
    """
    stay: list[K] = []
    move: list[K] = []
    target = m + (1 << j) * n0
    for item in keys:
        a = h(j + 1, key_of(item), n0)
        if a == m:
            stay.append(item)
        elif a == target:
            move.append(item)
        else:  # pragma: no cover - violated only by corrupted buckets
            raise AssertionError(
                f"key {key_of(item)} in bucket {m} (level {j}) rehashes to "
                f"{a}, neither {m} nor {target}"
            )
    return stay, move


def max_bucket(n: int, i: int, n0: int = 1) -> int:
    """Largest bucket number M - 1 in a file with state (n, i).

    The LH*g file-state recovery algorithm (A6) uses the identity
    ``M = n + N * 2^i`` (equation E1 of the paper family).
    """
    return file_extent(n, i, n0) - 1
