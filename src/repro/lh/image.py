"""The client's private image (n', i') of the LH* file state.

A new client starts with the worst image (n' = i' = 0, for the initial
bucket count it was configured with) and converges through IAMs; the LH*
result is that O(log M) addressing errors suffice for a fresh client, and
in steady state key operations average one message plus the reply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lh import addressing


@dataclass
class ClientImage:
    """Mutable client-side view of an LH* file's state."""

    n0: int = 1
    n: int = 0
    i: int = 0
    adjustments: int = 0

    def address(self, key: int) -> int:
        """Where this client *believes* ``key`` lives (A1 on the image)."""
        return addressing.lh_address(key, self.n, self.i, self.n0)

    def adjust(self, j_server: int, a_server: int) -> bool:
        """Apply an IAM (Algorithm A3); returns True if the image moved."""
        new_i, new_n = addressing.adjust_image(
            self.i, self.n, j_server, a_server, self.n0
        )
        changed = (new_i, new_n) != (self.i, self.n)
        if changed:
            self.i, self.n = new_i, new_n
            self.adjustments += 1
        return changed

    @property
    def bucket_count_estimate(self) -> int:
        """How many buckets the client thinks exist (identity E1)."""
        return addressing.file_extent(self.n, self.i, self.n0)

    def reset(self) -> None:
        """Forget everything (models a restarted client)."""
        self.n = 0
        self.i = 0
        self.adjustments = 0
