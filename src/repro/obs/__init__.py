"""Observability for the simulated LH*RS cluster.

Three cooperating pieces, all optional and all zero-overhead until
installed on a network:

* :class:`~repro.obs.trace.Tracer` — structured, replayable event
  stream (spans, typed events, sim-clock timestamps).
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  bounded-memory histograms, fed by the network and by every labelled
  `MessageStats` window.
* :class:`~repro.obs.audit.InvariantAuditor` — a tracer subscriber
  continuously checking cross-layer invariants and dumping the trace
  tail on violation.

See ``docs/observability.md`` for the taxonomy and usage.
"""

from repro.obs.audit import FAULT_EVIDENCE, InvariantAuditor, InvariantViolation
from repro.obs.metrics import (
    BYTE_BUCKETS,
    Counter,
    DEPTH_BUCKETS,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MESSAGE_BUCKETS,
    MetricsRegistry,
    MTTR_BUCKETS,
    QUEUE_DEPTH_BUCKETS,
    RETRY_BUCKETS,
    SYMBOL_BUCKETS,
    default_histograms,
)
from repro.obs.trace import (
    EVENT_TYPES,
    Span,
    TraceEvent,
    Tracer,
    UnknownEventType,
)

__all__ = [
    "BYTE_BUCKETS",
    "Counter",
    "DEPTH_BUCKETS",
    "EVENT_TYPES",
    "FAULT_EVIDENCE",
    "Gauge",
    "Histogram",
    "InvariantAuditor",
    "InvariantViolation",
    "LATENCY_BUCKETS",
    "MESSAGE_BUCKETS",
    "MTTR_BUCKETS",
    "MetricsRegistry",
    "QUEUE_DEPTH_BUCKETS",
    "RETRY_BUCKETS",
    "SYMBOL_BUCKETS",
    "Span",
    "TraceEvent",
    "Tracer",
    "UnknownEventType",
    "default_histograms",
]
