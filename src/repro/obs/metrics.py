"""Counters, gauges and bounded-memory histograms for the cluster.

`MessageStats` answers "how many messages did this one window cost";
the registry answers the serving-side questions layered on top: what is
the *distribution* of per-op message counts, how many retries has the
whole run burned, what was the repair time of each probe cycle.  It is
deliberately scrape-shaped — named instruments, label-free, exportable
as text or JSON — so a benchmark table and a future dashboard read the
same numbers.

Histograms are bounded-memory by construction: fixed bucket bounds
chosen at creation, a count per bucket plus sum/min/max — O(buckets)
forever, no reservoir, no per-sample storage.  That keeps a 5,000-op
chaos soak's accounting as small as a 10-op smoke test's.

The bridge from the existing accounting is :meth:`MetricsRegistry.
observe_window`: closing a labelled `MessageStats` window feeds its
message/byte/serial-depth/symbol-op totals into per-label histograms
(see :meth:`~repro.sim.stats.MessageStats.close`).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Iterable, Sequence

#: Default bucket upper bounds for per-op message counts (1+k Δ-parity
#: mutations sit in the low buckets; recoveries and scans in the tail).
MESSAGE_BUCKETS = (1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233)
#: Default bucket upper bounds for per-op byte volumes.
BYTE_BUCKETS = (64, 256, 1024, 4096, 16384, 65536, 262144, 1048576)
#: Serial depth rarely exceeds a handful of hops.
DEPTH_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16)
#: GF multiply-accumulate ops per window (recovery-dominated).
SYMBOL_BUCKETS = (0, 256, 1024, 4096, 16384, 65536, 262144, 1048576)
#: Retry attempts per operation.
RETRY_BUCKETS = (0, 1, 2, 3, 5, 8)
#: Probe-cycle mean-time-to-repair, in logical clock units.
MTTR_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)
#: End-to-end virtual read latency (service times are ~1 unit, so the
#: healthy fast path lands low and stragglers stretch into the tail).
LATENCY_BUCKETS = (
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
)
#: Inbound service-queue depth observed by each delivery.
QUEUE_DEPTH_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128)
#: Ops per scattered sub-batch (one ``ops.batch`` message).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (current failed nodes, file size)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bound bucketed distribution: O(len(bounds)) memory forever.

    ``bounds`` are inclusive upper bucket edges; observations above the
    last bound land in the implicit +Inf bucket.  Tracks count, sum,
    min and max exactly; quantiles are bucket-resolution estimates.
    """

    __slots__ = ("name", "help", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float], help: str = ""):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and ascending")
        self.name = name
        self.help = help
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)  # +Inf overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (upper bound of the target bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                if i < len(self.bounds):
                    return float(self.bounds[i])
                return float(self.max if self.max is not None else self.bounds[-1])
        return float(self.max if self.max is not None else self.bounds[-1])

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """Named instruments, created lazily, exported together.

    Instrument names are dotted paths (``net.messages``,
    ``op.insert.messages``); re-asking for a name returns the existing
    instrument, so emission sites never coordinate creation.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(
        self, name: str, bounds: Sequence[float] = MESSAGE_BUCKETS, help: str = ""
    ) -> Histogram:
        inst = self._instruments.get(name)
        if inst is None:
            inst = Histogram(name, bounds, help=help)
            self._instruments[name] = inst
        elif not isinstance(inst, Histogram):
            raise TypeError(f"{name!r} already registered as {type(inst).__name__}")
        return inst

    def _get(self, name: str, cls, help: str = ""):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, help=help)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(f"{name!r} already registered as {type(inst).__name__}")
        return inst

    def get(self, name: str):
        """Look up an instrument without creating it (KeyError if absent)."""
        return self._instruments[name]

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list[str]:
        return sorted(self._instruments)

    # ------------------------------------------------------------------
    # the MessageStats bridge
    # ------------------------------------------------------------------
    def observe_window(self, window) -> None:
        """Fold one closed `OperationWindow` into per-label histograms.

        Wired via ``MessageStats.metrics``: every labelled window that
        closes lands here, so any code already using
        ``stats.measure("insert")`` feeds ``op.insert.*`` distributions
        with no further changes.
        """
        label = window.label or "unlabelled"
        prefix = f"op.{label}"
        self.histogram(f"{prefix}.messages", MESSAGE_BUCKETS).observe(window.messages)
        self.histogram(f"{prefix}.bytes", BYTE_BUCKETS).observe(window.bytes)
        self.histogram(f"{prefix}.serial_depth", DEPTH_BUCKETS).observe(
            window.serial_depth
        )
        if window.symbol_ops:
            self.histogram(f"{prefix}.symbol_ops", SYMBOL_BUCKETS).observe(
                window.symbol_ops
            )
        self.counter(f"{prefix}.ops").inc()

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Snapshot every instrument, name-sorted (JSON-ready)."""
        return {name: self._instruments[name].snapshot() for name in self.names()}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        """Flat ``name value`` exposition (counters/gauges) with
        ``count/mean/p50/p99`` summaries for histograms."""
        lines: list[str] = []
        for name in self.names():
            inst = self._instruments[name]
            snap = inst.snapshot()
            if snap["type"] == "histogram":
                lines.append(
                    f"{name} count={snap['count']} mean={snap['mean']:.3g} "
                    f"p50={snap['p50']:g} p99={snap['p99']:g} max={snap['max'] or 0:g}"
                )
            else:
                value = snap["value"]
                rendered = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"{name} {rendered}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        self._instruments.clear()

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"


def default_histograms(registry: MetricsRegistry) -> None:
    """Pre-register the standard cluster instruments.

    Optional — instruments are lazily created anyway — but pinning them
    up front makes empty exports self-describing.
    """
    registry.counter("net.messages", "messages delivered")
    registry.counter("net.bytes", "payload bytes delivered")
    registry.counter("faults.injected", "fault-plane drop/fail/dup/delay events")
    registry.counter("retry.attempts", "client+parity retransmissions")
    registry.histogram("probe.mttr", MTTR_BUCKETS, "probe-cycle repair time")
    registry.histogram("recovery.ranks", SYMBOL_BUCKETS, "ranks decoded per recovery")
