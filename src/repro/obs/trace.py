"""Structured event tracing over the simulated cluster.

The papers evaluate every operation by counting messages; this module
records *which* messages (and splits, recoveries, Δ-folds, faults) in a
replayable stream, so a number that moved can be explained instead of
re-derived.  Three properties drive the design:

* **Zero overhead when off.**  Nothing here is consulted unless a
  :class:`Tracer` has been installed on the network
  (:meth:`~repro.sim.network.Network.install_tracer`); every emission
  site guards with a single ``tracer is None`` check and builds no
  event objects, formats no strings, when tracing is off.
* **Determinism.**  Events carry the *simulated* clock and a global
  sequence number — never wall-clock time — so two runs with the same
  seeds produce byte-identical traces (:meth:`Tracer.to_jsonl` is the
  canonical serialization; the replay-determinism test pins this).
* **Typed events.**  Event types come from a registry
  (:data:`EVENT_TYPES`); a typo in an emission site raises instead of
  silently producing an unmatchable stream.

Spans give events causal structure: ``with tracer.span("recovery",
group=3):`` emits ``span.start``/``span.end`` pairs with ids and parent
links, and every event emitted inside carries the enclosing span's id.
Subscribers (the invariant auditor, a metrics bridge, a test) see every
event as it happens via :meth:`Tracer.subscribe`.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Iterable

#: The span/event taxonomy (docs/observability.md documents each type).
EVENT_TYPES = frozenset(
    {
        # spans
        "span.start",
        "span.end",
        # message plane
        "msg.send",
        "msg.deliver",
        "msg.reply",
        "msg.hold",
        "msg.release",
        "msg.lost",
        "msg.shed",
        # fault plane and failure state
        "fault.injected",
        "node.fail",
        "node.restore",
        "node.register",
        "node.unregister",
        # file structure
        "split.start",
        "split.end",
        "merge.start",
        "merge.end",
        "availability.raise",
        # parity maintenance
        "parity.delta",
        "parity.batch",
        "parity.reset",
        # recovery and self-healing
        "recovery.start",
        "recovery.rank",
        "recovery.end",
        "probe.round",
        "report.stale",
        "report.unavailable",
        # client discipline
        "op.retry",
        "op.failed",
        "client.unavailable",
        # bulk scatter-gather data plane
        "batch.scatter",
        "batch.rebin",
        "batch.fallback",
        # gray-failure tolerance: hedged/degraded reads, deadlines,
        # per-bucket circuit breakers and paced rebuilds
        "op.hedged",
        "op.deadline_miss",
        "breaker.open",
        "breaker.close",
        "recovery.paced",
        # model-checking schedulers (repro.check): a matured batch was
        # deferred or delivered out of the legacy pump order
        "sched.defer",
        "sched.reorder",
        # coordinator HA: journal, checkpoints, lease and takeover
        "coord.journal",
        "coord.checkpoint",
        "coord.crash",
        "coord.lease.expired",
        "coord.takeover.start",
        "coord.takeover.end",
        "coord.resume",
        "coord.whois",
        # durable storage plane: local checkpoints, restart replay and
        # the delta catch-up / full-rebuild-fallback rejoin path
        "disk.checkpoint",
        "bucket.restart",
        "catchup.data",
        "catchup.parity",
        "catchup.fallback",
    }
)


class UnknownEventType(ValueError):
    """An emission site used an event type outside :data:`EVENT_TYPES`."""


class TraceEvent:
    """One trace record: ``(seq, time, type, span, attrs)``.

    ``time`` is the network's logical clock at emission; ``span`` is the
    id of the enclosing span (0 = no span).  ``attrs`` is a flat dict of
    JSON-serializable values — payload *sizes*, never payload bytes.
    """

    __slots__ = ("seq", "time", "type", "span", "attrs")

    def __init__(self, seq: int, time: float, type: str, span: int, attrs: dict):
        self.seq = seq
        self.time = time
        self.type = type
        self.span = span
        self.attrs = attrs

    def to_json(self) -> str:
        """Canonical one-line serialization (sorted keys, compact)."""
        return json.dumps(
            {
                "seq": self.seq,
                "t": self.time,
                "type": self.type,
                "span": self.span,
                **{f"a.{k}": v for k, v in sorted(self.attrs.items())},
            },
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )

    def __repr__(self) -> str:
        attrs = " ".join(f"{k}={v!r}" for k, v in sorted(self.attrs.items()))
        return f"[{self.seq:>6} t={self.time:g} s={self.span}] {self.type} {attrs}"


class Span:
    """An open span; use :meth:`Tracer.span` rather than this directly."""

    __slots__ = ("span_id", "parent_id", "name", "start_time", "tracer")

    def __init__(self, tracer: "Tracer", span_id: int, parent_id: int, name: str):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_time = tracer.now()

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer._close_span(self, error=exc_type is not None)


class Tracer:
    """The event stream: a clock, a span stack, a buffer, subscribers.

    ``capacity=None`` keeps every event (needed for byte-identical
    replay comparisons); a bounded capacity keeps only the most recent
    events — the auditor keeps its own tail, so long soaks can run with
    a small tracer buffer.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        capacity: int | None = None,
    ):
        #: logical-clock source; installed by Network.install_tracer
        self.clock = clock
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.capacity = capacity
        self._seq = 0
        self._span_counter = 0
        self._span_stack: list[Span] = []
        self._subscribers: list[Callable[[TraceEvent], None]] = []
        #: counts per event type (cheap always-on summary)
        self.counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    @property
    def current_span(self) -> int:
        """Id of the innermost open span (0 when none)."""
        return self._span_stack[-1].span_id if self._span_stack else 0

    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked synchronously with every event."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        self._subscribers.remove(callback)

    # ------------------------------------------------------------------
    def emit(self, type: str, **attrs: Any) -> TraceEvent:
        """Record one event (validated against :data:`EVENT_TYPES`)."""
        if type not in EVENT_TYPES:
            raise UnknownEventType(
                f"{type!r} is not a registered trace event type"
            )
        self._seq += 1
        event = TraceEvent(self._seq, self.now(), type, self.current_span, attrs)
        self.events.append(event)
        self.counts[type] = self.counts.get(type, 0) + 1
        for callback in self._subscribers:
            callback(event)
        return event

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span: ``with tracer.span("recovery", group=3): ...``.

        Emits ``span.start`` now and ``span.end`` (with the span's
        simulated duration and an ``error`` flag) on exit.  Nesting
        builds parent links.
        """
        self._span_counter += 1
        span = Span(self, self._span_counter, self.current_span, name)
        self._span_stack.append(span)
        # The start event belongs *to* the new span.
        self.emit("span.start", name=name, id=span.span_id,
                  parent=span.parent_id, **attrs)
        return span

    def _close_span(self, span: Span, error: bool = False) -> None:
        if not self._span_stack or self._span_stack[-1] is not span:
            raise RuntimeError("spans must close LIFO (innermost first)")
        self.emit(
            "span.end",
            name=span.name,
            id=span.span_id,
            duration=self.now() - span.start_time,
            error=error,
        )
        self._span_stack.pop()

    # ------------------------------------------------------------------
    def tail(self, n: int = 30) -> list[TraceEvent]:
        """The last ``n`` events (the explain-on-failure dump)."""
        if n <= 0:
            return []
        return list(self.events)[-n:]

    def format_tail(self, n: int = 30) -> str:
        """Human-readable trace tail, one event per line."""
        lines = [repr(event) for event in self.tail(n)]
        return "\n".join(lines) if lines else "(trace empty)"

    def to_jsonl(self, events: Iterable[TraceEvent] | None = None) -> str:
        """Canonical JSON-lines serialization of the buffered stream.

        Byte-identical across runs with identical seeds — the contract
        the replay-determinism test enforces.
        """
        source = self.events if events is None else events
        return "\n".join(event.to_json() for event in source) + "\n"

    def clear(self) -> None:
        """Drop buffered events (sequence numbers keep counting)."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (
            f"Tracer({len(self.events)} events buffered, "
            f"{self._seq} emitted, {len(self._subscribers)} subscribers)"
        )
