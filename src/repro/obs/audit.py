"""Continuous cross-layer invariant checking over the trace stream.

The chaos tests assert *end-state* properties (parity decodes, acked
writes survive); this auditor asserts *path* properties — things that
must hold at every step, where a violation seen live points at the
exact message that broke it.  It subscribes to a
:class:`~repro.obs.trace.Tracer` and keeps a bounded tail of recent
events, so a failed check raises :class:`InvariantViolation` carrying
the offending event *and* the trace leading up to it (the
explain-on-failure dump).

Streaming rules (checked on every event):

* **no-delivery-to-failed** — a ``msg.deliver`` whose recipient the
  failure state (tracked from ``node.fail``/``node.restore`` events)
  says is down.  The network's own guard makes this impossible through
  the public API; the auditor proves it stays impossible.
* **gap-implies-fault** — a Δ-parity sequence gap (``parity.delta``
  with verdict ``stale``) observed while *no* fault has ever been
  declared on the trace (no ``fault.injected``, ``node.fail``,
  ``msg.hold`` or ``msg.lost``).  Gaps are how parity buckets detect
  lost traffic; on a clean network a gap can only mean sender or
  channel state corruption.

State rule (checked at quiesce points via :meth:`check_file`):

* **parity-generation** — per group, every parity bucket's Δ-channel
  expectation equals each live data member's generation
  (``_parity_seq``): parity generation == max data generation.  A
  parity channel *ahead* of its data bucket is corruption at any time;
  *behind* at a quiesce point means a silently lost Δ.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.obs.trace import TraceEvent, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.file import LHRSFile

#: Event types that count as "a failure was declared" — after any of
#: these, Δ-sequence gaps are expected behaviour, not corruption.
FAULT_EVIDENCE = frozenset(
    {"fault.injected", "node.fail", "msg.hold", "msg.lost", "msg.shed"}
)


class InvariantViolation(AssertionError):
    """An audited invariant broke; carries the evidence.

    ``str()`` renders the rule, the offending event and the trace tail
    — what a failed chaos test prints instead of a bare assert.
    """

    def __init__(self, rule: str, detail: str, event: TraceEvent | None,
                 tail: list[TraceEvent]):
        self.rule = rule
        self.detail = detail
        self.event = event
        self.tail = tail
        lines = [f"invariant {rule!r} violated: {detail}"]
        if event is not None:
            lines.append(f"offending event: {event!r}")
        lines.append(f"--- trace tail ({len(tail)} events) ---")
        lines.extend(repr(e) for e in tail)
        super().__init__("\n".join(lines))


class InvariantAuditor:
    """Subscribe me to a tracer; I keep watch and remember the tail.

    ``strict=True`` (default) raises :class:`InvariantViolation` at the
    moment a streaming rule breaks — inside the offending operation's
    stack, which is exactly where a debugger wants to be.  With
    ``strict=False`` violations accumulate in :attr:`violations` for a
    post-hoc :meth:`assert_clean`.
    """

    def __init__(self, tracer: Tracer, tail: int = 200, strict: bool = True):
        self.tracer = tracer
        self.strict = strict
        self._tail: deque[TraceEvent] = deque(maxlen=tail)
        self.violations: list[InvariantViolation] = []
        #: nodes the trace says are currently failed
        self.failed: set[str] = set()
        #: count of fault-evidence events seen so far
        self.fault_evidence = 0
        #: events checked (cheap liveness indicator for tests)
        self.events_seen = 0
        tracer.subscribe(self._on_event)

    def close(self) -> None:
        """Detach from the tracer."""
        self.tracer.unsubscribe(self._on_event)

    # ------------------------------------------------------------------
    def _violate(self, rule: str, detail: str, event: TraceEvent | None) -> None:
        violation = InvariantViolation(rule, detail, event, list(self._tail))
        self.violations.append(violation)
        if self.strict:
            raise violation

    def _on_event(self, event: TraceEvent) -> None:
        self._tail.append(event)
        self.events_seen += 1
        kind = event.type
        if kind in FAULT_EVIDENCE:
            self.fault_evidence += 1
            if kind == "node.fail":
                self.failed.add(event.attrs["node"])
            return
        if kind == "node.restore":
            self.failed.discard(event.attrs["node"])
            return
        if kind == "node.unregister":
            self.failed.discard(event.attrs["node"])
            return
        if kind == "msg.deliver":
            recipient = event.attrs.get("to")
            if recipient in self.failed:
                self._violate(
                    "no-delivery-to-failed",
                    f"message {event.attrs.get('kind')!r} delivered to failed "
                    f"node {recipient!r}",
                    event,
                )
            return
        if kind == "parity.delta" and event.attrs.get("verdict") == "stale":
            if self.fault_evidence == 0:
                self._violate(
                    "gap-implies-fault",
                    "Δ-parity sequence gap (expected "
                    f"{event.attrs.get('expected')}, got {event.attrs.get('seq')}) "
                    "on a trace with no declared failures",
                    event,
                )
            return

    # ------------------------------------------------------------------
    def check_file(self, file: "LHRSFile") -> list[str]:
        """Quiesce-point generation audit: parity == data, per group.

        Walks the live server objects directly (no messages): for every
        group, each parity bucket's next-expected Δ sequence per
        position must be exactly ``data._parity_seq + 1`` for the live
        data member at that position.  Call this when the file is
        quiet — all Δs flushed and delivered, no open failures; the
        chaos tests call it after the final heal + recovery pass.

        Returns the list of problems (empty = clean) and also records
        them as violations under the ``parity-generation`` rule.
        """
        problems: list[str] = []
        network = file.network
        for server in list(network.nodes.values()):
            if not hasattr(server, "parity_targets"):
                continue  # not a data bucket
            if server.node_id in network.failed:
                continue
            if server._parity_queue:
                problems.append(
                    f"data bucket {server.node_id} has "
                    f"{len(server._parity_queue)} unflushed Δs (not quiesced)"
                )
                continue
            for target in server.parity_targets:
                parity = network.nodes.get(target)
                if parity is None or target in network.failed:
                    continue
                expected = parity._expected_seq.get(server.position, 1)
                generation = expected - 1
                if generation > server._parity_seq:
                    problems.append(
                        f"parity {target} channel for position "
                        f"{server.position} is AHEAD of data "
                        f"{server.node_id}: generation {generation} > "
                        f"data seq {server._parity_seq}"
                    )
                elif generation < server._parity_seq:
                    problems.append(
                        f"parity {target} channel for position "
                        f"{server.position} is behind data "
                        f"{server.node_id} at quiesce: generation "
                        f"{generation} < data seq {server._parity_seq}"
                    )
        for problem in problems:
            self._violate("parity-generation", problem, None)
        return problems

    # ------------------------------------------------------------------
    def assert_clean(self) -> None:
        """Raise the first recorded violation (non-strict mode wrap-up)."""
        if self.violations:
            raise self.violations[0]

    def __repr__(self) -> str:
        return (
            f"InvariantAuditor({self.events_seen} events, "
            f"{len(self.violations)} violations, "
            f"{len(self.failed)} nodes down)"
        )
