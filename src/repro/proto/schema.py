"""The message-schema registry: every wire kind, machine-readable.

Each :class:`MessageKind` names one message kind, its top-level payload
fields (``"name"`` required at the sender, ``"name?"`` optional), the
roles on both ends, whether it travels as a fire-and-forget ``send``, a
request/reply ``call``, or a multicast, and — for handlers that fold
Δ-records — the identifiers of the per-channel sequence guard the
handler body must reference (``repro.lint``'s seq-guard checker).

Invariants (enforced by :func:`validate_registry`, which runs at import
and is pinned by ``tests/lint/test_registry.py``):

* kinds are unique and grammatical (``EVENT_NAME_RE``);
* the ``handle_<mangled>`` names derived from the kinds are unique —
  the dispatch mangling in :class:`repro.sim.node.Node` is lossy
  (``.`` and ``_`` both mangle to ``_``), so two kinds may not collide;
* payload field names are unique per kind and grammatical.

``repro.lint`` proves the live cross-check: sent-set == handled-set ==
registry-set over everything statically resolvable under ``src/repro``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: Grammar for message kinds and trace event types: dotted lowercase.
EVENT_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")
#: Grammar for metric instrument names: dotted lowercase (digits may
#: lead inner segments: ``op.e19.messages``-style labels).
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9][a-z0-9_]*)*$")
#: Grammar for one payload field name (optional fields end in ``?``).
FIELD_RE = re.compile(r"^[a-z][a-z0-9_]*\??$")

#: Markers bracketing the generated kind index in docs/protocol.md.
TABLE_BEGIN = "<!-- BEGIN GENERATED: protocol-kind-index -->"
TABLE_END = "<!-- END GENERATED: protocol-kind-index -->"


@dataclass(frozen=True)
class MessageKind:
    """One registered wire-message kind."""

    kind: str
    #: short role names, e.g. ``client -> data`` (documentation only).
    sender: str
    receiver: str
    #: ``send`` | ``call`` | ``send/call`` | ``multicast`` | ``multicast/call``
    mode: str
    #: top-level payload field names; ``?`` suffix marks optional.
    payload: tuple[str, ...] = ()
    #: reply shape for calls / the named reply kind for async replies.
    reply: str = ""
    #: grouping for the generated docs table.
    section: str = "misc"
    #: one-line description for the generated docs table.
    summary: str = ""
    #: identifiers the handler body must reference (per-channel
    #: sequence guard) — consumed by repro.lint's seq-guard checker.
    seq_guard: tuple[str, ...] = ()
    #: kinds of the LH*g / LH*m baseline planes (kept out of the LH*RS
    #: sections of the generated table but fully registered).
    baseline: bool = False

    def required_fields(self) -> frozenset[str]:
        return frozenset(
            name for name in self.payload if not name.endswith("?")
        )

    def field_names(self) -> frozenset[str]:
        """Every legal top-level payload field (required + optional)."""
        return frozenset(name.rstrip("?") for name in self.payload)

    def payload_signature(self) -> str:
        """Human-readable payload shape for the generated table."""
        if not self.payload:
            return "—"
        return "{" + ", ".join(self.payload) + "}"


def handler_name(kind: str) -> str:
    """The ``handle_*`` method a kind dispatches to (Node.receive)."""
    return "handle_" + "".join(
        ch if ch.isalnum() else "_" for ch in kind
    )


#: Ordered sections of the generated table.
SECTIONS: tuple[str, ...] = (
    "key operations",
    "client replies",
    "batched data plane",
    "routing & degraded reads",
    "file structure",
    "parity maintenance",
    "recovery",
    "durable restart & catch-up",
    "coordinator HA",
    "scans",
    "LH*g baseline",
    "LH*m baseline",
)

_ENTRIES: tuple[MessageKind, ...] = (
    # -- key operations (client -> data bucket) ------------------------
    MessageKind(
        "insert", "client", "data", "send",
        ("key", "value", "client", "ack?", "hops?"),
        section="key operations",
        summary="store a record; acceptor runs A2, forwards if misaddressed",
    ),
    MessageKind(
        "update", "client", "data", "send",
        ("key", "value", "client", "ack?", "hops?"),
        section="key operations",
        summary="upsert; absent key answers `op.error`",
    ),
    MessageKind(
        "delete", "client", "data", "send",
        ("key", "client", "ack?", "hops?"),
        section="key operations",
        summary="idempotent removal",
    ),
    MessageKind(
        "search", "client", "data", "send",
        ("key", "client", "request", "hops?"),
        reply="search.result",
        section="key operations",
        summary="point read; acceptor replies `search.result` to the client",
    ),
    # -- client replies ------------------------------------------------
    MessageKind(
        "search.result", "data", "client", "send",
        ("request", "key", "found", "value"),
        section="client replies",
        summary="answer to `search` (also sent by mirror/degraded paths)",
    ),
    MessageKind(
        "op.ack", "data", "client", "send",
        ("token", "bucket"),
        section="client replies",
        summary="tokened-mutation confirmation (`client_acks` mode)",
    ),
    MessageKind(
        "op.error", "data", "client", "send",
        ("key", "reason"),
        section="client replies",
        summary="typed per-op refusal (e.g. update of an absent key)",
    ),
    MessageKind(
        "iam", "data", "client", "send",
        ("j", "a"),
        section="client replies",
        summary="acceptor's level and address — the A3 image adjustment",
    ),
    MessageKind(
        "iam.state", "coordinator", "client", "send",
        ("n", "i"),
        section="client replies",
        summary="authoritative image overwrite on routed deliveries",
    ),
    # -- batched data plane --------------------------------------------
    MessageKind(
        "ops.batch", "client", "data", "call",
        ("ops", "client"),
        reply="{j, a, results}",
        section="batched data plane",
        summary="one image-binned sub-batch; the reply doubles as an IAM",
    ),
    # -- routing & degraded reads --------------------------------------
    MessageKind(
        "route", "client", "coordinator", "send",
        ("kind", "op"),
        section="routing & degraded reads",
        summary="addressing failed; coordinator delivers by true state",
    ),
    MessageKind(
        "report.unavailable", "client/data", "coordinator", "send",
        ("kind", "op", "node"),
        section="routing & degraded reads",
        summary="a dead node: serve the op degraded and rebuild the node",
    ),
    MessageKind(
        "read.degraded", "client", "coordinator", "call",
        ("key",),
        reply="{served, found, value}",
        section="routing & degraded reads",
        summary="record-recovery read for a live-but-slow bucket (hedge)",
    ),
    # -- file structure ------------------------------------------------
    MessageKind(
        "overflow", "data", "coordinator", "send",
        ("bucket", "size"),
        section="file structure",
        summary="level-triggered load report; split policy input",
    ),
    MessageKind(
        "underflow", "data", "coordinator", "send",
        ("bucket", "size"),
        section="file structure",
        summary="occupancy below the merge threshold",
    ),
    MessageKind(
        "split", "coordinator", "data", "call",
        ("target", "new_level"),
        reply="{kept, moved}",
        section="file structure",
        summary="move the upper half of the key range to a new bucket",
    ),
    MessageKind(
        "records.bulk", "data", "data", "send",
        ("records", "source"),
        section="file structure",
        summary="whole record move of a split/merge in one message",
    ),
    MessageKind(
        "merge", "coordinator", "data", "call",
        ("into", "retiring?"),
        reply="{moved}",
        section="file structure",
        summary="dissolve the last bucket into its sibling",
    ),
    MessageKind(
        "level.set", "coordinator", "data", "send",
        ("level",),
        section="file structure",
        summary="widen a merge source's hash coverage back",
    ),
    MessageKind(
        "status", "coordinator", "any bucket", "multicast/call",
        (),
        reply="{level, size, ...}",
        section="file structure",
        summary="probe: bucket number/level/size (A6, load polling)",
    ),
    MessageKind(
        "state", "client", "coordinator", "call",
        (),
        reply="{n, i, n0}",
        section="file structure",
        summary="authoritative file state for a fresh client image",
    ),
    # -- parity maintenance --------------------------------------------
    MessageKind(
        "parity.update", "data", "parity", "send/call",
        ("op", "key", "rank", "pos", "delta", "length", "seq"),
        reply="{status, expected?}",
        section="parity maintenance",
        summary="one Δ-record; a `call` in `parity_ack` mode",
        seq_guard=("_channel_check", "_expected_seq"),
    ),
    MessageKind(
        "parity.batch", "data/coordinator", "parity", "send/call",
        ("ops", "expected_seqs?"),
        reply="{status, applied}",
        section="parity maintenance",
        summary="Δ-op list or columnar Δ-blocks; encode batches re-base",
        seq_guard=("_channel_check", "_expected_seq"),
    ),
    MessageKind(
        "parity.flush", "any", "data", "call",
        (),
        reply="{flushed}",
        section="parity maintenance",
        summary="force a lazy-mode Δ-queue flush",
    ),
    MessageKind(
        "parity.reset", "coordinator", "parity", "send",
        ("positions",),
        section="parity maintenance",
        summary="close retired positions' Δ-channels after a merge",
    ),
    MessageKind(
        "config.parity", "coordinator", "data", "send",
        ("targets",),
        section="parity maintenance",
        summary="new parity targets after an availability raise",
    ),
    MessageKind(
        "report.stale", "parity/data", "coordinator", "send",
        ("node",),
        section="parity maintenance",
        summary="a parity bucket missed Δ traffic — rebuild it from data",
    ),
    # -- recovery ------------------------------------------------------
    MessageKind(
        "bucket.dump", "coordinator", "data", "call",
        (),
        reply="{records, counter, free_ranks, level, ...}",
        section="recovery",
        summary="survivor data snapshot (flushes lazy Δs first)",
    ),
    MessageKind(
        "parity.dump", "coordinator", "parity", "call",
        (),
        reply="{records}",
        section="recovery",
        summary="all parity-record snapshots",
    ),
    MessageKind(
        "bucket.load", "coordinator", "data", "send",
        ("records", "counter", "free_ranks?", "level", "parity_seq?"),
        section="recovery",
        summary="install decoded state on a spare; resumes the Δ stream",
    ),
    MessageKind(
        "parity.load", "coordinator", "parity", "send",
        ("records", "expected_seqs"),
        section="recovery",
        summary="install rebuilt parity; aligns the Δ-channels",
    ),
    MessageKind(
        "parity.locate", "coordinator", "parity", "call",
        ("key",),
        reply="{rank, members} | None",
        section="recovery",
        summary="which record group holds a key (record recovery step 1)",
    ),
    MessageKind(
        "parity.rank", "coordinator", "parity", "call",
        ("rank",),
        reply="record snapshot | None",
        section="recovery",
        summary="one rank's snapshot — extra shares for a degraded decode",
    ),
    MessageKind(
        "record.fetch", "coordinator", "data", "call",
        ("key",),
        reply="{found, payload}",
        section="recovery",
        summary="direct payload fetch from a survivor (no A2)",
    ),
    MessageKind(
        "signature.dump", "auditor", "data/parity", "call",
        ("count?",),
        reply="{position|index, ranks}",
        section="recovery",
        summary="algebraic signatures per rank — the scrub/audit probe",
    ),
    MessageKind(
        "rejoin", "data/parity", "coordinator", "call",
        ("node", "epoch?", "clean?", "bucket?", "seq?",
         "group?", "index?", "expected_seqs?"),
        reply="{role}",
        section="recovery",
        summary="restart handshake: current / spare / catch-up / rebuild",
    ),
    # -- durable restart & catch-up ------------------------------------
    MessageKind(
        "delta.tail", "coordinator", "parity", "call",
        ("pos", "after"),
        reply="{covered, live, ops}",
        section="durable restart & catch-up",
        summary="Δ descriptors a restarted data bucket missed",
        seq_guard=("_expected_seq",),
    ),
    MessageKind(
        "catchup.load", "coordinator", "data", "call",
        ("set", "delete", "parity_seq", "resend_after?"),
        reply="{floor}",
        section="durable restart & catch-up",
        summary="final missed-key states; re-bases the Δ counter, unfences",
        seq_guard=("_parity_seq",),
    ),
    MessageKind(
        "wal.tail", "coordinator", "data", "call",
        ("after",),
        reply="{covered, live, ops}",
        section="durable restart & catch-up",
        summary="retained Δ-history past a parity bucket's durable prefix",
        seq_guard=("_parity_seq", "_entry_seq_range"),
    ),
    MessageKind(
        "catchup.parity", "coordinator", "parity", "call",
        ("ops",),
        reply="{ok, applied}",
        section="durable restart & catch-up",
        summary="fold the missed Δs in channel order, then unfence",
        seq_guard=("_channel_check",),
    ),
    # -- coordinator HA ------------------------------------------------
    MessageKind(
        "coord.journal.append", "coordinator", "standby", "call",
        ("records", "term"),
        reply="{lsn}",
        section="coordinator HA",
        summary="synchronous journal replication after each local append",
    ),
    MessageKind(
        "coord.journal.fetch", "standby", "coordinator/standby", "call",
        ("after",),
        reply="{records, term}",
        section="coordinator HA",
        summary="pull the journal suffix with lsn > after (gap fill)",
    ),
    MessageKind(
        "coord.checkpoint", "coordinator", "parity", "send",
        ("lsn", "n", "i", "group_levels", "spares", "term"),
        section="coordinator HA",
        summary="durable coordinator state in the parity-bucket header",
    ),
    MessageKind(
        "coord.checkpoint.fetch", "coordinator", "parity", "call",
        (),
        reply="checkpoint | None",
        section="coordinator HA",
        summary="journal-less takeover reads the newest header back",
    ),
    MessageKind(
        "coord.heartbeat", "coordinator", "standby", "send",
        ("term", "lsn"),
        section="coordinator HA",
        summary="lease renewal; a leading lsn triggers a fetch",
    ),
    MessageKind(
        "coord.ping", "standby", "coordinator", "call",
        (),
        reply="{term, lsn}",
        section="coordinator HA",
        summary="check-then-fence before a standby promotes itself",
    ),
    MessageKind(
        "coord.whois", "client", "standby", "call",
        (),
        reply="{primary, ready, retry_after?}",
        section="coordinator HA",
        summary="who is primary? vouch / sit out the lease / promote inline",
    ),
    # -- scans ---------------------------------------------------------
    MessageKind(
        "scan", "client", "data", "multicast",
        ("scan", "client", "predicate", "deterministic", "image",
         "assumed_level?"),
        reply="scan.reply",
        section="scans",
        summary="predicate scan; buckets forward to unknown descendants",
    ),
    MessageKind(
        "scan.reply", "data", "client", "send",
        ("scan", "bucket", "level", "matches"),
        section="scans",
        summary="per-bucket matches (always sent under deterministic mode)",
    ),
    # -- LH*g baseline -------------------------------------------------
    MessageKind(
        "gparity.apply", "data", "parity file", "send",
        ("gkey", "op", "key", "delta", "length", "sender", "hops?"),
        section="LH*g baseline",
        summary="grouped-parity Δ addressed by the primary's F2 image",
        baseline=True,
    ),
    MessageKind(
        "gparity.iam", "parity file", "data", "send",
        ("j", "a"),
        section="LH*g baseline",
        summary="converges the primary's image of the parity file",
        baseline=True,
    ),
    MessageKind(
        "gparity.scan_for_bucket", "coordinator", "parity file", "multicast",
        ("bucket", "state", "n0"),
        reply="[records]",
        section="LH*g baseline",
        summary="A4: parity records with a member in the lost bucket",
        baseline=True,
    ),
    MessageKind(
        "gparity.locate", "coordinator", "parity file", "multicast",
        ("key",),
        reply="record | None",
        section="LH*g baseline",
        summary="A7 record recovery lookup",
        baseline=True,
    ),
    MessageKind(
        "gparity.load", "coordinator", "parity file", "send",
        ("records",),
        section="LH*g baseline",
        summary="rebuilt parity content onto a spare",
        baseline=True,
    ),
    MessageKind(
        "contributions.for_parity_bucket", "coordinator", "data",
        "multicast",
        ("bucket", "state"),
        reply="[records]",
        section="LH*g baseline",
        summary="A5: primary records whose parity lived at the lost bucket",
        baseline=True,
    ),
    # -- LH*m baseline -------------------------------------------------
    MessageKind(
        "mirror.insert", "data", "mirror", "send",
        ("key", "value"),
        section="LH*m baseline",
        summary="forwarded mutation (also `mirror.update`, same handler)",
        baseline=True,
    ),
    MessageKind(
        "mirror.update", "data", "mirror", "send",
        ("key", "value"),
        section="LH*m baseline",
        summary="forwarded upsert (aliased to the insert handler)",
        baseline=True,
    ),
    MessageKind(
        "mirror.delete", "data", "mirror", "send",
        ("key",),
        section="LH*m baseline",
        summary="forwarded removal",
        baseline=True,
    ),
    MessageKind(
        "mirror.bulk", "data", "mirror", "send",
        ("records",),
        section="LH*m baseline",
        summary="forwarded split/merge record move",
        baseline=True,
    ),
    MessageKind(
        "mirror.split", "data", "mirror", "send",
        (),
        section="LH*m baseline",
        summary="drop the movers and bump the mirror's level",
        baseline=True,
    ),
    MessageKind(
        "mirror.search", "client", "mirror", "send",
        ("key", "client", "request"),
        reply="search.result",
        section="LH*m baseline",
        summary="degraded read while the primary is down",
        baseline=True,
    ),
    MessageKind(
        "mirror.dump", "coordinator", "mirror", "call",
        (),
        reply="{records, level}",
        section="LH*m baseline",
        summary="mirror snapshot for a primary rebuild",
        baseline=True,
    ),
    MessageKind(
        "mirror.load", "coordinator", "mirror", "send",
        ("records", "level"),
        section="LH*m baseline",
        summary="install a copy on a rebuilt mirror",
        baseline=True,
    ),
)

#: The registry: kind -> :class:`MessageKind`.
REGISTRY: dict[str, MessageKind] = {entry.kind: entry for entry in _ENTRIES}


def kinds() -> frozenset[str]:
    """Every registered message kind."""
    return frozenset(REGISTRY)


def validate_registry() -> None:
    """Raise ``ValueError`` on an internally inconsistent registry."""
    problems: list[str] = []
    if len(REGISTRY) != len(_ENTRIES):
        problems.append("duplicate kinds in the registry")
    handlers: dict[str, str] = {}
    for entry in _ENTRIES:
        if not EVENT_NAME_RE.match(entry.kind):
            problems.append(f"kind {entry.kind!r} violates the kind grammar")
        mangled = handler_name(entry.kind)
        prior = handlers.get(mangled)
        # The dispatch mangling is lossy; aliased handlers (mirror.update
        # -> handle_mirror_insert in code) still get distinct mangles.
        if prior is not None:
            problems.append(
                f"kinds {prior!r} and {entry.kind!r} both dispatch to "
                f"{mangled}()"
            )
        handlers[mangled] = entry.kind
        seen: set[str] = set()
        for name in entry.payload:
            if not FIELD_RE.match(name):
                problems.append(
                    f"{entry.kind}: field {name!r} violates the grammar"
                )
            stripped = name.rstrip("?")
            if stripped in seen:
                problems.append(f"{entry.kind}: duplicate field {stripped!r}")
            seen.add(stripped)
        if entry.section not in SECTIONS:
            problems.append(
                f"{entry.kind}: unknown section {entry.section!r}"
            )
    if problems:
        raise ValueError("; ".join(problems))


def render_protocol_table(
    entries: "tuple[MessageKind, ...] | None" = None,
) -> str:
    """The generated message-kind index for docs/protocol.md.

    Deterministic: sorted by (section order, kind), fixed columns —
    the docs-sync checker compares this byte-for-byte against the block
    between :data:`TABLE_BEGIN` and :data:`TABLE_END`.
    """
    source = _ENTRIES if entries is None else tuple(entries)
    lines = [
        "| kind | flow | mode | payload | reply | notes |",
        "|---|---|---|---|---|---|",
    ]
    rank = {name: i for i, name in enumerate(SECTIONS)}
    entries_sorted = sorted(
        source, key=lambda e: (rank.get(e.section, len(SECTIONS)), e.kind)
    )
    current = None
    for entry in entries_sorted:
        if entry.section != current:
            current = entry.section
            lines.append(
                f"| **{current}** | | | | | |"
            )
        reply = entry.reply.replace("|", "\\|") if entry.reply else "—"
        payload = entry.payload_signature().replace("|", "\\|")
        lines.append(
            f"| `{entry.kind}` | {entry.sender} → {entry.receiver} "
            f"| {entry.mode} | `{payload}` | {reply} | {entry.summary} |"
        )
    return "\n".join(lines) + "\n"


validate_registry()
