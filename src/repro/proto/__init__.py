"""Machine-readable protocol registry (the wire contract).

``repro.proto.schema`` is the single source of truth for every message
kind on the simulated network: payload fields, direction, send/call
mode, reply shape and (for Δ-applying handlers) the per-channel
sequence guard the handler must consult.  The static-analysis suite
(``repro.lint``) cross-checks every send/call site and every
``handle_*`` method against this registry, and the message-kind index
in ``docs/protocol.md`` is generated from it byte-for-byte
(``python -m repro lint --protocol-table``).
"""

from repro.proto.schema import (
    EVENT_NAME_RE,
    METRIC_NAME_RE,
    REGISTRY,
    TABLE_BEGIN,
    TABLE_END,
    MessageKind,
    handler_name,
    kinds,
    render_protocol_table,
    validate_registry,
)

__all__ = [
    "EVENT_NAME_RE",
    "METRIC_NAME_RE",
    "REGISTRY",
    "TABLE_BEGIN",
    "TABLE_END",
    "MessageKind",
    "handler_name",
    "kinds",
    "render_protocol_table",
    "validate_registry",
]
