"""Scalable availability: raising k as the file grows.

Fixed-k availability decays toward 0 as a file scales (each new group is
another independent failure domain).  LH*RS's answer is a policy that
raises the availability level at group-count thresholds; this example
grows a file through two threshold crossings and tabulates, side by
side, the whole-file availability a fixed k=1 file would have.

Run:  python examples/scalable_availability.py
"""

from repro.core import AvailabilityPolicy, LHRSConfig, LHRSFile, file_availability

policy = AvailabilityPolicy.scalable(
    base_level=1,      # young files run at k=1
    first_threshold=4,  # +1 parity bucket per group at 4 groups...
    growth=4,           # ...and again at 16, 64, ...
    max_level=3,
)
config = LHRSConfig(
    group_size=4,
    bucket_capacity=8,
    policy=policy,
    upgrade_existing_groups=True,  # retrofit old groups eagerly
)
file = LHRSFile(config)

P = 0.99  # per-node availability
print(f"{'records':>8} {'buckets':>8} {'groups':>7} {'k':>5} "
      f"{'P(scalable)':>12} {'P(fixed k=1)':>13} {'overhead':>9}")

checkpoints = [100, 300, 600, 1200, 2400, 4800]
inserted = 0
for target in checkpoints:
    for key in range(inserted, target):
        file.insert(key, f"payload-{key}".encode() * 3)
    inserted = target
    levels = file.group_levels()
    groups = len(levels)
    k_now = max(levels.values())
    p_scalable = file.analytic_availability(P)
    p_fixed = file_availability(file.bucket_count, 4, P, k=1)
    print(f"{inserted:>8} {file.bucket_count:>8} {groups:>7} {k_now:>5} "
          f"{p_scalable:>12.6f} {p_fixed:>13.6f} "
          f"{file.storage_overhead():>9.3f}")

assert file.verify_parity_consistency() == [], "parity must stay consistent"
print("\nEvery group after eager upgrades:", dict(sorted(
    (lvl, list(file.group_levels().values()).count(lvl))
    for lvl in set(file.group_levels().values())
)), "(level -> group count)")
print("Parity stayed consistent through every upgrade and split.")
