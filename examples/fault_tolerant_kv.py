"""A fault-tolerant key-value session log under continuous failures.

Models the workload the SDDS papers motivate: a large, growing
dictionary of session records served from distributed RAM, with servers
failing *while* the application keeps reading and writing.  A failure
schedule crashes six servers at random points of a 3,000-operation
mixed workload; the application never sees an error and the file ends
parity-consistent.

Run:  python examples/fault_tolerant_kv.py
"""

from repro.core import LHRSConfig, LHRSFile
from repro.workloads import (
    FailureSchedule,
    KeyStream,
    OperationMix,
    PayloadShape,
    generate_operations,
    run_trace,
)

config = LHRSConfig(group_size=4, availability=2, bucket_capacity=16)
file = LHRSFile(config)

print("Phase 1 — load 1,500 session records (structured payloads)...")
warmup = generate_operations(
    1_500,
    OperationMix(insert=1),
    keys=KeyStream(kind="uniform", seed=11),
    payloads=PayloadShape(kind="record", seed=11),
    seed=11,
)
run_trace(file, warmup)
print(f"  file grew to {file.bucket_count} data buckets, "
      f"{file.parity_bucket_count()} parity buckets")

print("\nPhase 2 — 3,000 mixed operations with six server crashes...")
candidates = [f"f.d{b}" for b in range(file.bucket_count)] + [
    f"f.p{g}.{i}" for g, k in file.group_levels().items() for i in range(k)
]
schedule = FailureSchedule.random_bursts(
    candidates, operations=3_000, bursts=6, burst_size=1, seed=12
)
for event in schedule.events:
    print(f"  will crash {event.node_id} at operation {event.at_operation}")

mixed = generate_operations(
    3_000,
    OperationMix(insert=1, search=3, update=1, delete=0.3),
    keys=KeyStream(kind="uniform", key_space=10**8, seed=13),
    payloads=PayloadShape(kind="record", seed=13),
    seed=13,
)
with file.stats.measure("phase2") as window:
    summary = run_trace(file, mixed, schedule)

print(f"\n  operations executed: {summary['counts']}")
print(f"  messages used:       {window.messages} "
      f"({window.messages / 3_000:.2f} per op)")
print(f"  groups recovered:    {file.rs_coordinator.recovery.groups_recovered}")
print(f"  degraded reads:      "
      f"{file.rs_coordinator.recovery.degraded_reads_served}")
print(f"  records rebuilt:     "
      f"{file.rs_coordinator.recovery.records_reconstructed}")
print(f"  parity consistent:   {not file.verify_parity_consistency()}")
print(f"  every crashed node back: "
      f"{all(file.network.is_available(e.node_id) for e in schedule.events)}")
