"""Quickstart: a high-availability LH*RS file in a few lines.

Builds a file with bucket groups of m=4 and k=2 parity buckets per group
(2-availability), loads it, crashes two servers of one group, and shows
that every record is still served and the buckets come back on spares.

Run:  python examples/quickstart.py
"""

from repro.core import LHRSConfig, LHRSFile

# One knob object: group size m, availability k, bucket capacity b.
config = LHRSConfig(group_size=4, availability=2, bucket_capacity=32)
file = LHRSFile(config)

print("Loading 2,000 records...")
for key in range(2_000):
    file.insert(key, f"value-of-{key}".encode())

print(f"  data buckets:   {file.bucket_count}")
print(f"  bucket groups:  {len(file.group_levels())} (k=2 parity each)")
print(f"  parity buckets: {file.parity_bucket_count()}")
print(f"  load factor:    {file.load_factor():.2f}")
print(f"  storage overhead (parity/data bytes): {file.storage_overhead():.2f}")
print(f"  parity consistent: {not file.verify_parity_consistency()}")

# Ordinary operations — searches cost what plain LH* charges.
assert file.search(1234).value == b"value-of-1234"
file.update(1234, b"updated")
assert file.search(1234).value == b"updated"
file.delete(999)
assert not file.search(999).found

print("\nCrashing data buckets 0 and 1 (same bucket group)...")
file.fail_data_bucket(0)
file.fail_data_bucket(1)

# The next search that touches a dead bucket triggers a degraded read
# (Reed-Solomon record recovery) and transparent bucket recovery.
victim_key = next(k for k in range(2_000) if file.find_bucket_of(k) == 0)
outcome = file.search(victim_key)
print(f"  search({victim_key}) during failure -> {outcome.value!r}")
print(f"  bucket 0 back online: {file.network.is_available('f.d0')}")
print(f"  bucket 1 back online: {file.network.is_available('f.d1')}")
print(f"  parity consistent:    {not file.verify_parity_consistency()}")

# Availability arithmetic: what k=2 buys at p=99% per-node availability.
print(f"\nP(all data servable | p=0.99): {file.analytic_availability(0.99):.6f}")
print("Compare plain LH*:             "
      f"{0.99 ** file.bucket_count:.6f}  (p^M — the motivating collapse)")
