"""Day-2 operations: probing, scrubbing, repair, backup, restore.

Running a high-availability store is more than surviving crashes.  This
example walks the operational toolkit: sweep for silent failures
(probe), scrub for silent *corruption* with algebraic signatures
(audit → localize → repair), and take a consistent whole-file backup
that restores byte-identically.

Run:  python examples/operations_toolkit.py
"""

from repro.core import LHRSConfig, LHRSFile
from repro.core.snapshot import from_json, restore_file, snapshot_file, to_json
from repro.sim.rng import make_rng

file = LHRSFile(LHRSConfig(group_size=4, availability=2, bucket_capacity=16))
rng = make_rng(99)
keys = [int(x) for x in rng.choice(10**9, size=1_000, replace=False)]
for key in keys:
    file.insert(key, key.to_bytes(8, "big") * 16)  # 128-byte records
print(f"Loaded {file.total_records()} records over {file.bucket_count} "
      f"data + {file.parity_bucket_count()} parity buckets.\n")

# ----------------------------------------------------------------- probe
print("1. Probe — two servers died silently (nothing has touched them):")
file.network.fail("f.d3")
file.network.fail("f.p2.1")
summary = file.rs_coordinator.probe()
print(f"   probe found {summary['unavailable']} -> recovered "
      f"{summary['recovered']['data_buckets']} data / "
      f"{summary['recovered']['parity_buckets']} parity buckets\n")

# ----------------------------------------------------------------- audit
print("2. Scrub — bit rot flips bytes inside two stored records:")
for bucket in (1, 9):
    server = file.data_servers()[bucket]
    key = next(iter(server.bucket.records))
    payload = bytearray(server.bucket.records[key])
    payload[5] ^= 0x80
    server.bucket.records[key] = bytes(payload)

with file.stats.measure("audit") as window:
    report = file.audit()
print(f"   audit moved {window.bytes / 1024:.1f} KB of signatures "
      f"(vs ~{file.data_storage_bytes() / 1024:.0f} KB of payloads)")
for group_report in report["reports"]:
    suspects = {
        rank: pos for rank, pos in group_report["suspects"].items()
    }
    print(f"   group {group_report['group']}: corrupt ranks "
          f"{group_report['mismatched_ranks']} -> suspect columns {suspects}")
    for position in {p for p in suspects.values() if p is not None}:
        file.repair_corruption(group_report["group"], position)
print(f"   after repair: audit clean = {file.audit()['clean']}, "
      f"parity consistent = {not file.verify_parity_consistency()}\n")

# ---------------------------------------------------------------- backup
print("3. Backup — snapshot, serialize, restore, verify:")
text = to_json(snapshot_file(file))
print(f"   snapshot is {len(text) / 1024:.0f} KB of JSON")
clone = restore_file(from_json(text), file_id="clone")
identical = clone.census_with_ranks() == file.census_with_ranks()
print(f"   restored clone byte-identical: {identical}")
clone.insert(10**10, b"the clone lives its own life")
print(f"   clone still operational and consistent: "
      f"{not clone.verify_parity_consistency()}")
