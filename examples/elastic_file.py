"""An elastic file: grow under inserts, shrink under deletions.

The split pointer's inverse — bucket merges — lets an LH*RS file return
servers when a workload drains, with parity maintained through every
merge (the dissolving bucket's records leave their record groups and
re-enter the absorber's).  This example drives a fill/drain cycle with
the underflow merge policy enabled and prints the file's breathing.

Run:  python examples/elastic_file.py
"""

from repro.core import LHRSConfig, LHRSFile
from repro.sdds.coordinator import SplitPolicy
from repro.sim.rng import make_rng

file = LHRSFile(
    LHRSConfig(group_size=4, availability=1, bucket_capacity=16),
    split_policy=SplitPolicy(threshold=0.58, merge_threshold=0.25),
)
rng = make_rng(77)

print(f"{'phase':<22} {'records':>8} {'buckets':>8} {'parity':>7} "
      f"{'load':>6} {'consistent':>11}")


def report(phase):
    print(f"{phase:<22} {file.total_records():>8} {file.bucket_count:>8} "
          f"{file.parity_bucket_count():>7} {file.load_factor():>6.2f} "
          f"{str(not file.verify_parity_consistency()):>11}")


keys = [int(x) for x in rng.choice(10**9, size=2_000, replace=False)]
for i, key in enumerate(keys):
    file.insert(key, key.to_bytes(8, "big") * 4)
    if i + 1 in (500, 2_000):
        report(f"after {i + 1} inserts")

# Drain: the business day ends, sessions expire.
survivors = keys[-100:]
for key in keys[:-100]:
    file.delete(key)
report("after 95% deletions")

# The merge policy returned servers; the survivors are still served.
assert all(file.search(k).found for k in survivors)
print(f"\nall {len(survivors)} surviving records still readable")

# Refill: the next day's load; the file regrows.
fresh = [int(x) + 2 * 10**9 for x in rng.choice(10**9, size=1_500,
                                                replace=False)]
for key in fresh:
    file.insert(key, key.to_bytes(8, "big") * 4)
report("after refill")

# And a failure mid-cycle still heals.
node = file.fail_data_bucket(2)
probe = next(k for k in fresh if file.find_bucket_of(k) == 2)
assert file.search(probe).found
print(f"\ncrashed {node} mid-cycle; search still served and bucket healed: "
      f"{file.network.is_available(node)}")
report("after heal")
