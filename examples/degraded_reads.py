"""Degraded mode: serving reads while buckets stay down.

With automatic recovery disabled, the coordinator answers key searches
purely through Reed-Solomon record recovery — the paper's point that a
single requested record can be rebuilt long before the whole bucket is.
The example compares the message cost of a normal search against a
degraded read at k=1 and k=2, and shows that *unsuccessful* searches
stay certain (the parity directory is authoritative).

Run:  python examples/degraded_reads.py
"""

from repro.core import LHRSConfig, LHRSFile

for k in (1, 2):
    print(f"\n=== availability level k={k} ===")
    config = LHRSConfig(
        group_size=4,
        availability=k,
        bucket_capacity=16,
        auto_recover=False,   # stay in degraded mode
        degraded_reads=True,
    )
    file = LHRSFile(config)
    for key in range(800):
        file.insert(key, f"session-{key}".encode() * 2)

    victim_key = next(k2 for k2 in range(800) if file.find_bucket_of(k2) == 0)
    for key in range(800):   # converge the client image
        file.search(key)

    with file.stats.measure("normal") as normal:
        outcome = file.search(victim_key)
    assert outcome.found

    failed = [file.fail_data_bucket(0)]
    if k == 2:
        failed.append(file.fail_data_bucket(1))
    print(f"  failed buckets: {failed} (left down — degraded mode)")

    with file.stats.measure("degraded") as degraded:
        outcome = file.search(victim_key)
    assert outcome.found and outcome.value == f"session-{victim_key}".encode() * 2

    with file.stats.measure("miss") as miss:
        absent = file.search(10**9 + 7)  # addresses a dead bucket? maybe not;
    print(f"  normal search:   {normal.messages} messages")
    print(f"  degraded read:   {degraded.messages} messages "
          f"(locate parity + fetch {4 - 1 - (k - 1)}+ members + decode)")
    print(f"  still down:      {not file.network.is_available(failed[0])}")

    # Certain miss while the addressed bucket is dead:
    dead_bucket = 0
    absent_key = next(
        key for key in range(10**6, 10**6 + 10**4)
        if file.find_bucket_of(key) == dead_bucket
    )
    outcome = file.search(absent_key)
    print(f"  search(absent key at dead bucket) -> found={outcome.found} "
          f"(certain: parity directory is authoritative)")
