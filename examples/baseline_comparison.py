"""The design space: LH*RS against its published alternatives.

Runs the same workload on five schemes and prints the trade-off table
the LH*RS evaluation is about: storage overhead, failure-free access
costs, availability level, and recovery cost.

Run:  python examples/baseline_comparison.py
"""

from repro.baselines import LHGConfig, LHGFile, LHMFile, LHSFile, LHStarBaseline
from repro.core import LHRSConfig, LHRSFile
from repro.sim.rng import make_rng

COUNT = 600
CAPACITY = 16
PAYLOAD = 64


def load(file, seed=21):
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=COUNT, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big") * (PAYLOAD // 8))
    return keys


def converge_and_measure(file, keys):
    for key in keys:
        file.search(key)
    with file.stats.measure("search") as search_w:
        for key in keys[:50]:
            file.search(key)
    with file.stats.measure("insert") as insert_w:
        for i, key in enumerate(keys[:50]):
            file.insert(10**9 + 1 + i, b"x" * PAYLOAD)
    return search_w.messages / 50, insert_w.messages / 50


rows = []

lh = LHStarBaseline(capacity=CAPACITY)
keys = load(lh)
s, i = converge_and_measure(lh, keys)
rows.append(("LH* (none)", 0, lh.storage_overhead(), s, i, "impossible"))

lhm = LHMFile(capacity=CAPACITY)
keys = load(lhm)
s, i = converge_and_measure(lhm, keys)
node = lhm.fail_data_bucket(1)
with lhm.stats.measure("rec") as w:
    lhm.recover([node])
rows.append(("LH*m mirroring", 1, lhm.storage_overhead(), s, i,
             f"{w.messages} msgs (copy)"))

lhs = LHSFile(stripes=4, capacity=CAPACITY)
keys = load(lhs)
s, i = converge_and_measure(lhs, keys)
rows.append(("LH*s striping s=4", 1, lhs.storage_overhead(), s, i,
             "scan + per-record"))

lhg = LHGFile(LHGConfig(group_size=4, bucket_capacity=CAPACITY))
keys = load(lhg)
s, i = converge_and_measure(lhg, keys)
node = lhg.fail_data_bucket(1)
with lhg.stats.measure("rec") as w:
    lhg.recover([node])
rows.append(("LH*g grouping m=4", 1, lhg.storage_overhead(), s, i,
             f"{w.messages} msgs (F2 scan)"))

for k in (1, 2):
    lhrs = LHRSFile(LHRSConfig(group_size=4, availability=k,
                               bucket_capacity=CAPACITY))
    keys = load(lhrs)
    s, i = converge_and_measure(lhrs, keys)
    node = lhrs.fail_data_bucket(1)
    with lhrs.stats.measure("rec") as w:
        lhrs.recover([node])
    rows.append((f"LH*RS m=4 k={k}", k, lhrs.storage_overhead(), s, i,
                 f"{w.messages} msgs (group)"))

print(f"{'scheme':<20} {'avail':>5} {'overhead':>9} {'search':>7} "
      f"{'insert':>7}  recovery of one bucket")
for name, avail, overhead, search, insert, recovery in rows:
    print(f"{name:<20} {avail:>5} {overhead:>9.3f} {search:>7.2f} "
          f"{insert:>7.2f}  {recovery}")

print("""
Reading the table (the paper's argument):
 * mirroring buys fast recovery at 100% storage;
 * striping is cheap to store but every search pays ~2s messages;
 * LH*g gets LH*-cost searches at ~1/m storage, but only 1-availability
   and whole-parity-file scans to recover;
 * LH*RS keeps LH*-cost searches and ~k/m storage while scaling the
   availability level k — and recovers from exactly its group.
""")
