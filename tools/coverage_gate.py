#!/usr/bin/env python3
"""Enforce per-package line-coverage floors from a coverage.json report.

CI runs the tier-1 suite under ``pytest --cov ... --cov-report=json`` and
then gates on this script: each watched package must keep its aggregate
line coverage at or above its floor, so coverage regressions in the
codec/core layers fail the build instead of rotting silently.

Stdlib-only on purpose — the gate itself needs no third-party packages,
so it can be unit-tested (and run against a saved report) in
environments where ``pytest-cov`` is not installed.

Usage::

    python tools/coverage_gate.py coverage.json \
        --floor repro/gf=90 --floor repro/rs=90 --floor repro/core=85

With no ``--floor`` arguments the defaults in :data:`DEFAULT_FLOORS`
apply.  Exit status 0 = every floor held, 1 = at least one breach,
2 = report unreadable or a watched package has no measured files.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Default floors (percent) for the packages the ISSUE gates on.  Keys
#: ending in ``.py`` gate a single file (its lines leave the enclosing
#: package's aggregate — the file answers to its own, stricter floor).
DEFAULT_FLOORS: dict[str, float] = {
    "repro/gf": 90.0,
    "repro/rs": 90.0,
    "repro/core": 85.0,
    "repro/core/journal.py": 90.0,
    # Batch data plane (this PR): the client scatter-gather loop and
    # the vectorized bucket/parity apply paths must stay exercised.
    "repro/sdds": 75.0,
    "repro/sdds/client.py": 72.0,
    "repro/core/data_bucket.py": 82.0,
    # Model-checking harness (this PR): the linearizability checker,
    # schedulers and shrinker must stay exercised end to end.
    "repro/check": 85.0,
    # Durable storage plane (this PR): the simulated disk and WAL codec
    # underpin every restart-recovery claim — keep them pinned.
    "repro/store": 85.0,
    # Static-analysis suite (this PR): the checkers enforce the wire
    # contract; an unexercised rule is a rule that silently stopped
    # firing.  The registry is data-heavy, hence the higher floor.
    "repro/lint": 85.0,
    "repro/proto": 90.0,
}


def package_of(path: str, packages: list[str]) -> str | None:
    """Which watched entry a measured file belongs to (None = ignore).

    Entries are package path segments (``repro/core``) or single files
    (``repro/core/journal.py``).  Longest match wins, so ``repro/core``
    files are never claimed by a hypothetical ``repro`` entry and a
    file floor outranks its package.
    """
    normalized = f"/{path.replace(chr(92), '/')}"
    best = None
    for package in packages:
        if package.endswith(".py"):
            matched = normalized.endswith(f"/{package}")
        else:
            matched = f"/{package}/" in normalized
        if matched and (best is None or len(package) > len(best)):
            best = package
    return best


def aggregate(report: dict, floors: dict[str, float]) -> dict[str, dict]:
    """Per-package ``{statements, covered, percent, floor}`` rollup."""
    packages = sorted(floors)
    totals = {
        package: {"statements": 0, "covered": 0} for package in packages
    }
    for path, entry in report.get("files", {}).items():
        package = package_of(path, packages)
        if package is None:
            continue
        summary = entry.get("summary", {})
        totals[package]["statements"] += int(summary.get("num_statements", 0))
        totals[package]["covered"] += int(summary.get("covered_lines", 0))
    out = {}
    for package, counts in totals.items():
        statements = counts["statements"]
        percent = 100.0 * counts["covered"] / statements if statements else 0.0
        out[package] = {
            "statements": statements,
            "covered": counts["covered"],
            "percent": percent,
            "floor": floors[package],
        }
    return out


def evaluate(report: dict, floors: dict[str, float]) -> tuple[int, list[str]]:
    """Gate a parsed coverage.json; returns ``(exit_status, lines)``."""
    rollup = aggregate(report, floors)
    lines = []
    status = 0
    for package, row in sorted(rollup.items()):
        if row["statements"] == 0:
            lines.append(
                f"FAIL {package}: no measured files in the report "
                "(wrong --cov targets?)"
            )
            status = 2
            continue
        verdict = "ok  " if row["percent"] >= row["floor"] else "FAIL"
        if verdict == "FAIL" and status == 0:
            status = 1
        lines.append(
            f"{verdict} {package}: {row['percent']:.1f}% line coverage "
            f"({row['covered']}/{row['statements']} lines, "
            f"floor {row['floor']:.0f}%)"
        )
    return status, lines


def parse_floor(spec: str) -> tuple[str, float]:
    package, _, value = spec.partition("=")
    if not package or not value:
        raise argparse.ArgumentTypeError(
            f"floor spec {spec!r} is not of the form package=percent"
        )
    return package.strip("/"), float(value)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="path to a coverage.json report")
    parser.add_argument(
        "--floor", action="append", type=parse_floor, default=[],
        metavar="PKG=PCT", help="override/add one package floor",
    )
    args = parser.parse_args(argv)
    floors = dict(DEFAULT_FLOORS) if not args.floor else dict(args.floor)

    try:
        with open(args.report) as handle:
            report = json.load(handle)
    except (OSError, ValueError) as err:
        print(f"coverage gate: cannot read {args.report}: {err}")
        return 2

    status, lines = evaluate(report, floors)
    print("\n".join(lines))
    return status


if __name__ == "__main__":
    sys.exit(main())
